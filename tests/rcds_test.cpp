// Tests for the RC metadata service: LWW merge algebra, the RPC layer,
// master-master replication, anti-entropy repair, client failover, the
// single-master ablation mode, and signed metadata subsets.
#include <gtest/gtest.h>

#include "rcds/client.hpp"
#include "rcds/server.hpp"
#include "rcds/signed.hpp"

namespace snipe::rcds {
namespace {

using simnet::Address;
using simnet::World;

// ---- Assertion / Record algebra (pure unit tests) ----

TEST(Assertion, NewerOrdering) {
  Assertion a{"n", "v", 10, "s1", false};
  Assertion b{"n", "v", 20, "s1", false};
  EXPECT_TRUE(Assertion::newer(b, a));
  EXPECT_FALSE(Assertion::newer(a, b));
  // Timestamp tie: origin breaks it deterministically.
  Assertion c{"n", "v", 10, "s2", false};
  EXPECT_TRUE(Assertion::newer(c, a));
  EXPECT_FALSE(Assertion::newer(a, c));
  // Perfect tie: removal wins.
  Assertion d{"n", "v", 10, "s1", true};
  EXPECT_TRUE(Assertion::newer(d, a));
}

TEST(Assertion, EncodeDecodeRoundTrip) {
  Assertion a{"proc:address", "snipe://x:1/y", 123456789, "srv:7100", true};
  ByteWriter w;
  a.encode(w);
  ByteReader r(w.bytes());
  auto b = Assertion::decode(r).value();
  EXPECT_EQ(b.name, a.name);
  EXPECT_EQ(b.value, a.value);
  EXPECT_EQ(b.timestamp, a.timestamp);
  EXPECT_EQ(b.origin, a.origin);
  EXPECT_EQ(b.tombstone, a.tombstone);
}

TEST(Record, MergeIsIdempotentAndCommutative) {
  Assertion a{"n", "v1", 10, "s1", false};
  Assertion b{"n", "v1", 20, "s2", true};
  Record r1, r2;
  EXPECT_TRUE(r1.merge(a));
  EXPECT_TRUE(r1.merge(b));
  EXPECT_FALSE(r1.merge(a));  // stale write changes nothing
  EXPECT_FALSE(r1.merge(b));  // idempotent
  r2.merge(b);
  r2.merge(a);
  EXPECT_EQ(r1.values("n"), r2.values("n"));
  EXPECT_TRUE(r1.values("n").empty());  // tombstoned
  EXPECT_EQ(r1.latest(), 20);
}

TEST(Record, MultiValuedNames) {
  Record r;
  r.merge({"loc", "url1", 1, "s", false});
  r.merge({"loc", "url2", 2, "s", false});
  r.merge({"other", "x", 3, "s", false});
  EXPECT_EQ(r.values("loc"), (std::vector<std::string>{"url1", "url2"}));
  EXPECT_EQ(r.value("other").value(), "x");
  EXPECT_FALSE(r.value("absent").has_value());
  EXPECT_EQ(r.live().size(), 3u);
}

TEST(Op, RoundTripAndValidation) {
  ByteWriter w;
  op_set("name", "value").encode(w);
  ByteReader r(w.bytes());
  auto op = Op::decode(r).value();
  EXPECT_EQ(op.kind, Op::Kind::set);
  EXPECT_EQ(op.name, "name");

  ByteWriter bad;
  bad.u8(9);
  bad.str("n");
  bad.str("v");
  ByteReader br(bad.bytes());
  EXPECT_FALSE(Op::decode(br).ok());
}

// ---- RPC layer ----

struct RpcFixture : ::testing::Test {
  RpcFixture() : world(11) {
    world.create_network("lan", simnet::ethernet100());
    for (const char* name : {"client", "server"})
      world.attach(world.create_host(name), *world.network("lan"));
  }
  World world;
};

TEST_F(RpcFixture, CallResponseAndError) {
  transport::RpcEndpoint server(*world.host("server"), 9000);
  transport::RpcEndpoint client(*world.host("client"), 9001);
  server.serve(1, [](const Address&, const Bytes& body) -> Result<Bytes> {
    Bytes echoed = body;
    echoed.push_back('!');
    return echoed;
  });
  server.serve(2, [](const Address&, const Bytes&) -> Result<Bytes> {
    return Result<Bytes>(Errc::quota_exceeded, "too much");
  });

  Result<Bytes> got1(Errc::state_error, "unset");
  Result<Bytes> got2(Errc::state_error, "unset");
  client.call(server.address(), 1, to_bytes("hi"), [&](Result<Bytes> r) { got1 = r; });
  client.call(server.address(), 2, {}, [&](Result<Bytes> r) { got2 = r; });
  world.engine().run();

  ASSERT_TRUE(got1.ok());
  EXPECT_EQ(to_string(got1.value()), "hi!");
  EXPECT_EQ(got2.code(), Errc::quota_exceeded);
  EXPECT_EQ(got2.error().message, "too much");
  EXPECT_EQ(client.stats().calls_ok, 1u);
  EXPECT_EQ(client.stats().calls_error, 1u);
}

TEST_F(RpcFixture, UnknownTagReported) {
  transport::RpcEndpoint server(*world.host("server"), 9000);
  transport::RpcEndpoint client(*world.host("client"), 9001);
  Result<Bytes> got(Errc::state_error, "unset");
  client.call(server.address(), 77, {}, [&](Result<Bytes> r) { got = r; });
  world.engine().run();
  EXPECT_EQ(got.code(), Errc::not_found);
}

TEST_F(RpcFixture, TimeoutWhenServerDown) {
  transport::RpcEndpoint server(*world.host("server"), 9000);
  transport::RpcEndpoint client(*world.host("client"), 9001);
  world.host("server")->set_up(false);
  Result<Bytes> got(Errc::state_error, "unset");
  client.call(server.address(), 1, {}, [&](Result<Bytes> r) { got = r; },
              duration::seconds(1));
  world.engine().run_for(duration::seconds(2));
  EXPECT_EQ(got.code(), Errc::timeout);
  EXPECT_EQ(client.stats().calls_timeout, 1u);
}

TEST_F(RpcFixture, SharedSecretAuthentication) {
  transport::RpcConfig good;
  good.shared_secret = "sesame";
  transport::RpcConfig bad;
  bad.shared_secret = "wrong";

  transport::RpcEndpoint server(*world.host("server"), 9000, good);
  transport::RpcEndpoint authorized(*world.host("client"), 9001, good);
  transport::RpcEndpoint impostor(*world.host("client"), 9002, bad);
  server.serve(1, [](const Address&, const Bytes&) -> Result<Bytes> { return Bytes{1}; });

  Result<Bytes> ok_result_(Errc::state_error, "unset"), bad_result(Errc::state_error, "unset");
  authorized.call(server.address(), 1, {}, [&](Result<Bytes> r) { ok_result_ = r; });
  impostor.call(server.address(), 1, {}, [&](Result<Bytes> r) { bad_result = r; });
  world.engine().run();

  EXPECT_TRUE(ok_result_.ok());
  EXPECT_EQ(bad_result.code(), Errc::permission_denied);
  EXPECT_EQ(server.stats().requests_rejected_auth, 1u);
}

TEST_F(RpcFixture, NotifyIsDelivered) {
  transport::RpcEndpoint server(*world.host("server"), 9000);
  transport::RpcEndpoint client(*world.host("client"), 9001);
  std::vector<std::string> got;
  server.on_notify(5, [&](const Address&, const Bytes& b) { got.push_back(to_string(b)); });
  client.notify(server.address(), 5, to_bytes("event"));
  world.engine().run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "event");
}

// ---- RC server + client ----

struct RcFixture : ::testing::Test {
  static constexpr int kReplicas = 3;

  RcFixture() : world(21) {
    world.create_network("lan", simnet::ethernet100());
    for (int i = 0; i < kReplicas; ++i) {
      auto& h = world.create_host("rc" + std::to_string(i));
      world.attach(h, *world.network("lan"));
      servers.push_back(std::make_unique<RcServer>(h));
    }
    std::vector<Address> all;
    for (auto& s : servers) all.push_back(s->address());
    for (std::size_t i = 0; i < servers.size(); ++i) {
      std::vector<Address> peers;
      for (std::size_t j = 0; j < all.size(); ++j)
        if (j != i) peers.push_back(all[j]);
      servers[i]->set_peers(peers);
    }
    auto& ch = world.create_host("client");
    world.attach(ch, *world.network("lan"));
    client_rpc = std::make_unique<transport::RpcEndpoint>(ch, 9100);
    client = std::make_unique<RcClient>(*client_rpc, all);
  }

  World world;
  std::vector<std::unique_ptr<RcServer>> servers;
  std::unique_ptr<transport::RpcEndpoint> client_rpc;
  std::unique_ptr<RcClient> client;
};

TEST_F(RcFixture, SetAndLookupThroughClient) {
  Result<void> wrote(Errc::state_error, "unset");
  client->set("urn:snipe:proc:p1", names::kProcState, "running",
              [&](Result<void> r) { wrote = r; });
  world.engine().run();
  ASSERT_TRUE(wrote.ok());

  Result<std::vector<std::string>> values(Errc::state_error, "unset");
  client->lookup("urn:snipe:proc:p1", names::kProcState,
                 [&](Result<std::vector<std::string>> r) { values = r; });
  world.engine().run();
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(values.value(), (std::vector<std::string>{"running"}));
}

TEST_F(RcFixture, SetReplacesPreviousValue) {
  client->set("u", "k", "v1", [](Result<void>) {});
  world.engine().run();
  client->set("u", "k", "v2", [](Result<void>) {});
  world.engine().run();
  Result<std::vector<std::string>> values(Errc::state_error, "unset");
  client->lookup("u", "k", [&](auto r) { values = r; });
  world.engine().run();
  EXPECT_EQ(values.value(), (std::vector<std::string>{"v2"}));
}

TEST_F(RcFixture, AddAccumulatesAndRemoveRetracts) {
  client->add("u", "loc", "url1", [](Result<void>) {});
  client->add("u", "loc", "url2", [](Result<void>) {});
  world.engine().run();
  client->remove("u", "loc", "url1", [](Result<void>) {});
  world.engine().run();
  Result<std::vector<std::string>> values(Errc::state_error, "unset");
  client->lookup("u", "loc", [&](auto r) { values = r; });
  world.engine().run();
  EXPECT_EQ(values.value(), (std::vector<std::string>{"url2"}));
}

TEST_F(RcFixture, WritesReplicateToAllMasters) {
  client->set("u", "k", "v", [](Result<void>) {});
  world.engine().run();
  for (auto& server : servers) {
    auto record = server->get("u");
    ASSERT_EQ(record.size(), 1u) << server->server_id();
    EXPECT_EQ(record[0].value, "v");
    EXPECT_GT(record[0].timestamp, 0);  // auto-timestamped (§3.1)
  }
}

TEST_F(RcFixture, LookupMissingUriYieldsEmpty) {
  Result<std::vector<Assertion>> got(Errc::state_error, "unset");
  client->get("urn:snipe:proc:ghost", [&](auto r) { got = r; });
  world.engine().run();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().empty());
}

TEST_F(RcFixture, ClientFailsOverWhenPreferredReplicaDies) {
  world.host("rc0")->set_up(false);
  Result<void> wrote(Errc::state_error, "unset");
  client->set("u", "k", "v", [&](Result<void> r) { wrote = r; });
  world.engine().run_for(duration::seconds(10));
  ASSERT_TRUE(wrote.ok());
  EXPECT_GE(client->stats().failovers, 1u);

  // Surviving replicas hold the write.
  EXPECT_EQ(servers[1]->get("u").size(), 1u);
  EXPECT_EQ(servers[2]->get("u").size(), 1u);
}

TEST_F(RcFixture, DeadReplicaConvergesViaBufferedReplication) {
  // rc2 is down briefly — shorter than the transport's message TTL, so the
  // peers' buffered replication updates reach it on reboot, no anti-entropy
  // needed.
  world.host("rc2")->set_up(false);
  client->set("u", "k", "v", [](Result<void>) {});
  world.engine().run_for(duration::seconds(5));
  EXPECT_TRUE(servers[2]->get("u").empty());
  world.host("rc2")->set_up(true);
  world.engine().run_for(duration::seconds(10));
  ASSERT_EQ(servers[2]->get("u").size(), 1u);
  EXPECT_EQ(servers[2]->get("u")[0].value, "v");
}

TEST_F(RcFixture, LongDeadReplicaConvergesViaAntiEntropy) {
  // rc2 is down *longer* than the transport TTL (30 s): push replication
  // expires, and only the periodic digest exchange can repair it.
  world.host("rc2")->set_up(false);
  client->set("u", "k", "v", [](Result<void>) {});
  world.engine().run_for(duration::seconds(40));
  EXPECT_TRUE(servers[2]->get("u").empty());
  world.host("rc2")->set_up(true);
  world.engine().run_for(duration::seconds(25));  // two anti-entropy rounds
  ASSERT_EQ(servers[2]->get("u").size(), 1u);
  EXPECT_EQ(servers[2]->get("u")[0].value, "v");
  std::uint64_t repairs = 0;
  for (auto& s : servers) repairs += s->stats().anti_entropy_repairs;
  EXPECT_GT(repairs, 0u);
}

TEST_F(RcFixture, ConcurrentWritesConvergeIdentically) {
  // Two different masters accept conflicting writes in the same instant;
  // all replicas must converge to the same winner (§2.1's availability-over-
  // serializability trade).
  servers[0]->apply("u", {op_set("k", "from0")});
  servers[1]->apply("u", {op_set("k", "from1")});
  world.engine().run_for(duration::seconds(15));
  auto v0 = servers[0]->get("u");
  auto v1 = servers[1]->get("u");
  auto v2 = servers[2]->get("u");
  ASSERT_FALSE(v0.empty());
  // All replicas agree on the same set of surviving values.
  auto values_of = [](const std::vector<Assertion>& as) {
    std::vector<std::string> v;
    for (const auto& a : as) v.push_back(a.value);
    return v;
  };
  EXPECT_EQ(values_of(v0), values_of(v1));
  EXPECT_EQ(values_of(v1), values_of(v2));
}

TEST_F(RcFixture, ClientsSeeServerTimestampsForAgeDecisions) {
  // §3.1: "Automatic time stamping of metadata by the RC servers also
  // helps temporally dis-joint tasks communication by allowing them to
  // decide for themselves the age and therefore relevance of any metadata
  // previously stored."  A later reader compares stamps across epochs.
  client->set("urn:snipe:proc:sensor", "last-reading", "17", [](Result<void>) {});
  world.engine().run();
  world.engine().run_until(world.now() + duration::minutes(10));
  client->set("urn:snipe:proc:sensor", "calibration", "0.97", [](Result<void>) {});
  world.engine().run();

  Result<std::vector<Assertion>> record(Errc::state_error, "unset");
  client->get("urn:snipe:proc:sensor", [&](auto r) { record = r; });
  world.engine().run();
  ASSERT_TRUE(record.ok());
  SimTime reading_ts = 0, calibration_ts = 0;
  for (const auto& a : record.value()) {
    if (a.name == "last-reading") reading_ts = a.timestamp;
    if (a.name == "calibration") calibration_ts = a.timestamp;
  }
  ASSERT_GT(reading_ts, 0);
  ASSERT_GT(calibration_ts, 0);
  // The consumer can tell the reading is ~10 minutes stale relative to the
  // calibration entry.
  EXPECT_GE(calibration_ts - reading_ts, duration::minutes(9));
}

TEST_F(RcFixture, TimestampsAreMonotonePerServer) {
  auto w1 = servers[0]->apply("u", {op_add("k", "a")});
  auto w2 = servers[0]->apply("u", {op_add("k", "b")});
  ASSERT_FALSE(w1.empty());
  ASSERT_FALSE(w2.empty());
  EXPECT_LT(w1[0].timestamp, w2[0].timestamp);
}

TEST(RcSingleMaster, ReplicaForwardsWritesToMaster) {
  // The LDAP-style ablation: only the master accepts writes; a client
  // talking to a replica gets referred and retries at the master.
  World world(31);
  world.create_network("lan", simnet::ethernet100());
  auto& m = world.create_host("master");
  auto& r = world.create_host("replica");
  auto& c = world.create_host("client");
  for (auto* h : {&m, &r, &c}) world.attach(*h, *world.network("lan"));

  RcServerConfig cfg;
  cfg.single_master = true;
  RcServer master(m, RcServer::kDefaultPort, cfg);
  RcServer replica(r, RcServer::kDefaultPort, cfg);
  master.set_peers({master.address(), replica.address()});
  replica.set_peers({master.address(), replica.address()});

  transport::RpcEndpoint rpc(c, 9100);
  // Client deliberately prefers the replica.
  RcClient client(rpc, {replica.address(), master.address()});
  Result<void> wrote(Errc::state_error, "unset");
  client.set("u", "k", "v", [&](Result<void> res) { wrote = res; });
  world.engine().run_for(duration::seconds(5));
  ASSERT_TRUE(wrote.ok());
  EXPECT_GE(replica.stats().forwards, 1u);
  EXPECT_EQ(master.get("u").size(), 1u);
  // The master still replicates reads-only copies outward.
  world.engine().run_for(duration::seconds(5));
  EXPECT_EQ(replica.get("u").size(), 1u);
}

// ---- Signed subsets ----

TEST(SignedSubset, SignVerifyTamper) {
  Rng rng(55);
  auto signer = crypto::Principal::create("urn:snipe:user:moore", rng);
  auto subset = SignedSubset::sign(signer, "urn:snipe:proc:p",
                                   {{"proc:address", "snipe://a:1/x"}, {"proc:state", "ok"}});
  EXPECT_TRUE(subset.verify_with(signer.keys.pub));

  auto tampered = subset;
  tampered.entries[0].second = "snipe://evil:1/x";
  EXPECT_FALSE(tampered.verify_with(signer.keys.pub));
}

TEST(SignedSubset, OrderInsensitiveCanonicalForm) {
  Rng rng(56);
  auto signer = crypto::Principal::create("u", rng);
  auto s1 = SignedSubset::sign(signer, "r", {{"a", "1"}, {"b", "2"}});
  auto s2 = SignedSubset::sign(signer, "r", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(s1.canonical_bytes(), s2.canonical_bytes());
}

TEST(SignedSubset, StoresAsAssertionAndDecodes) {
  Rng rng(57);
  auto signer = crypto::Principal::create("urn:snipe:rm:grm1", rng);
  auto subset = SignedSubset::sign(signer, "lifn://utk.edu/code/agent",
                                   {{"lifn:sha256", "abc123"}});
  Op op = subset.to_op("code");
  EXPECT_EQ(op.name, "rcds:sig:code");
  auto decoded = SignedSubset::from_assertion_value(op.value).value();
  EXPECT_EQ(decoded.uri, subset.uri);
  EXPECT_EQ(decoded.signer, signer.uri);
  EXPECT_TRUE(decoded.verify_with(signer.keys.pub));
}

}  // namespace
}  // namespace snipe::rcds
