// Unit tests for snipe_simnet: event engine determinism, media timing,
// route selection (§5.3), failure injection, loss, and broadcast.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "obs/trace.hpp"
#include "simnet/engine.hpp"
#include "simnet/fault.hpp"
#include "simnet/media.hpp"
#include "simnet/world.hpp"

namespace snipe::simnet {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(duration::milliseconds(30), [&] { order.push_back(3); });
  engine.schedule(duration::milliseconds(10), [&] { order.push_back(1); });
  engine.schedule(duration::milliseconds(20), [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), duration::milliseconds(30));
}

TEST(Engine, EqualTimesFireInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    engine.schedule(duration::seconds(1), [&order, i] { order.push_back(i); });
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool fired = false;
  auto id = engine.schedule(duration::seconds(1), [&] { fired = true; });
  engine.cancel(id);
  engine.run();
  EXPECT_FALSE(fired);
  engine.cancel(id);       // double-cancel is a no-op
  engine.cancel(TimerId{});  // null cancel is a no-op
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine engine;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) engine.schedule(duration::seconds(1), tick);
  };
  engine.schedule(0, tick);
  engine.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(engine.now(), duration::seconds(4));
}

TEST(Engine, RunUntilAdvancesClockExactly) {
  Engine engine;
  bool fired = false;
  engine.schedule(duration::seconds(10), [&] { fired = true; });
  engine.run_until(duration::seconds(5));
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.now(), duration::seconds(5));
  engine.run_until(duration::seconds(10));
  EXPECT_TRUE(fired);
}

TEST(Engine, WeakEventsDoNotKeepRunAlive) {
  Engine engine;
  int weak_fires = 0;
  // A self-rescheduling housekeeping tick, like anti-entropy or polling.
  std::function<void()> tick = [&] {
    ++weak_fires;
    engine.schedule_weak(duration::seconds(1), tick);
  };
  engine.schedule_weak(duration::seconds(1), tick);
  bool strong_fired = false;
  engine.schedule(duration::milliseconds(2500), [&] { strong_fired = true; });

  engine.run();
  EXPECT_TRUE(strong_fired);
  // The weak ticks at 1 s and 2 s ran (they precede the strong event); the
  // one at 3 s did not — run() stopped when only housekeeping remained.
  EXPECT_EQ(weak_fires, 2);
  EXPECT_EQ(engine.now(), duration::milliseconds(2500));
}

TEST(Engine, RunUntilExecutesWeakEvents) {
  Engine engine;
  int weak_fires = 0;
  std::function<void()> tick = [&] {
    ++weak_fires;
    engine.schedule_weak(duration::seconds(1), tick);
  };
  engine.schedule_weak(duration::seconds(1), tick);
  engine.run_until(duration::milliseconds(3500));
  EXPECT_EQ(weak_fires, 3);
}

TEST(Engine, WeakEventCanSpawnStrongWork) {
  Engine engine;
  bool strong_done = false;
  engine.schedule_weak(duration::seconds(1), [&] {
    engine.schedule(duration::milliseconds(100), [&] { strong_done = true; });
  });
  // Nothing strong pending yet: run() stops immediately...
  engine.run();
  EXPECT_FALSE(strong_done);
  // ...but run_until executes the tick, whose strong child then also runs.
  engine.run_until(duration::seconds(1));
  engine.run();
  EXPECT_TRUE(strong_done);
}

TEST(Engine, CancelWeakTimer) {
  Engine engine;
  bool fired = false;
  auto id = engine.schedule_weak(duration::seconds(1), [&] { fired = true; });
  engine.cancel(id);
  engine.run_until(duration::seconds(2));
  EXPECT_FALSE(fired);
}

TEST(Engine, RunHonoursEventBudget) {
  Engine engine;
  int count = 0;
  for (int i = 0; i < 10; ++i) engine.schedule(i, [&] { ++count; });
  EXPECT_EQ(engine.run(3), 3u);
  EXPECT_EQ(count, 3);
}

TEST(Engine, CancelFromInsideARunningEvent) {
  // The retransmit-ack pattern: the event that fires cancels a sibling
  // scheduled for the same tick and its own (already-fired) id.
  Engine engine;
  bool sibling_fired = false;
  TimerId self, sibling;
  self = engine.schedule(duration::seconds(1), [&] {
    engine.cancel(sibling);  // pending sibling: destroyed, never fires
    engine.cancel(self);     // own id already fired: no-op
  });
  sibling = engine.schedule(duration::seconds(1), [&] { sibling_fired = true; });
  engine.run();
  EXPECT_FALSE(sibling_fired);
  EXPECT_EQ(engine.events_run(), 1u);
}

TEST(Engine, CancelAfterFireIsANoOpEvenWhenSlotIsReused) {
  Engine engine;
  bool first = false, second = false;
  TimerId id = engine.schedule(duration::seconds(1), [&] { first = true; });
  engine.run();
  EXPECT_TRUE(first);
  // The new event recycles the fired event's slot; the stale id carries the
  // old generation and must not be able to cancel the newcomer.
  TimerId fresh = engine.schedule(duration::seconds(1), [&] { second = true; });
  EXPECT_EQ(fresh.slot, id.slot);
  engine.cancel(id);
  engine.run();
  EXPECT_TRUE(second);
}

TEST(Engine, TenThousandEqualTimeEventsFireInScheduleOrder) {
  Engine engine;
  const int kEvents = 10'000;
  std::vector<int> order;
  order.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i)
    engine.schedule(duration::seconds(1), [&order, i] { order.push_back(i); });
  engine.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) ASSERT_EQ(order[i], i);
  EXPECT_EQ(engine.now(), duration::seconds(1));
}

TEST(Engine, RunTerminatesWhenOnlyWeakEventsRemain) {
  // A self-rescheduling weak tick (the housekeeping pattern) must not keep
  // run() spinning once the last strong event has fired.
  Engine engine;
  int ticks = 0, strong = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    engine.schedule_weak(duration::seconds(1), tick);
  };
  engine.schedule_weak(duration::seconds(1), tick);
  engine.schedule(duration::milliseconds(1500), [&] { ++strong; });
  engine.run();
  EXPECT_EQ(strong, 1);
  // The weak tick at t=1s ran (it preceded the strong event); the one it
  // re-armed for t=2s must not.
  EXPECT_EQ(ticks, 1);
  EXPECT_EQ(engine.now(), duration::milliseconds(1500));
}

TEST(Engine, ClearReleasesEventOwnedResources) {
  Engine engine;
  auto resource = std::make_shared<int>(7);
  std::weak_ptr<int> watch = resource;
  engine.schedule(duration::seconds(5), [keep = std::move(resource)] { (void)*keep; });
  EXPECT_FALSE(watch.expired());
  engine.clear();
  EXPECT_TRUE(watch.expired());  // destroyed without running
  EXPECT_EQ(engine.run(), 0u);
}

TEST(Engine, CancelWithPreClearTimerIdIsSafeAfterClear) {
  Engine engine;
  TimerId stale = engine.schedule(duration::seconds(1), [] {});
  engine.clear();
  bool fired = false;
  // Post-clear event may land in the same slot; the stale id must not hit it.
  engine.schedule(duration::seconds(1), [&] { fired = true; });
  engine.cancel(stale);
  engine.run();
  EXPECT_TRUE(fired);
}

TEST(Media, SerializeTimeScalesWithSize) {
  auto eth = ethernet100();
  // 1500 bytes + 66 overhead at 100 Mb/s = 125.28 us
  EXPECT_NEAR(to_seconds(eth.serialize_time(1500)), 125.28e-6, 1e-7);
  // ATM pays the cell tax.
  auto atm = atm155();
  double atm_goodput = 149.76e6 * (1.0 - 5.0 / 53.0);
  EXPECT_NEAR(to_seconds(atm.serialize_time(9000)),
              (9000 + 36) * 8.0 / atm_goodput, 1e-7);
}

TEST(Media, ModelsAreOrderedAsExpected) {
  // Effective point-to-point large-message rate: myrinet > atm155 > eth100 > wan.
  auto rate = [](const MediaModel& m) {
    return 8192.0 / to_seconds(m.serialize_time(8192));
  };
  EXPECT_GT(rate(myrinet()), rate(atm155()));
  EXPECT_GT(rate(atm155()), rate(ethernet100()));
  EXPECT_GT(rate(ethernet100()), rate(wan_t3()));
}

class WorldTest : public ::testing::Test {
 protected:
  WorldTest() : world(42) {
    world.create_network("lan", ethernet100());
    auto& a = world.create_host("a");
    auto& b = world.create_host("b");
    world.attach(a, *world.network("lan"));
    world.attach(b, *world.network("lan"));
  }
  World world;
};

TEST_F(WorldTest, DatagramDelivery) {
  std::vector<Packet> received;
  world.host("b")->bind(5000, [&](const Packet& p) { received.push_back(p); }).value();
  world.host("a")->send({"b", 5000}, to_bytes("hello")).value();
  world.engine().run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(to_string(received[0].payload), "hello");
  EXPECT_EQ(received[0].src.host, "a");
  EXPECT_EQ(received[0].network, "lan");
}

TEST_F(WorldTest, DeliveryTimeMatchesMediaModel) {
  SimTime arrival = -1;
  world.host("b")->bind(5000, [&](const Packet&) { arrival = world.now(); }).value();
  world.host("a")->send({"b", 5000}, Bytes(1000, 0)).value();
  world.engine().run();
  auto eth = ethernet100();
  EXPECT_EQ(arrival, eth.serialize_time(1000) + eth.latency);
}

TEST_F(WorldTest, BackToBackSendsQueueOnTheNic) {
  std::vector<SimTime> arrivals;
  world.host("b")->bind(5000, [&](const Packet&) { arrivals.push_back(world.now()); }).value();
  world.host("a")->send({"b", 5000}, Bytes(1000, 0)).value();
  world.host("a")->send({"b", 5000}, Bytes(1000, 0)).value();
  world.engine().run();
  ASSERT_EQ(arrivals.size(), 2u);
  auto eth = ethernet100();
  // Second packet waits for the first to finish serializing.
  EXPECT_EQ(arrivals[1] - arrivals[0], eth.serialize_time(1000));
}

TEST_F(WorldTest, OversizeDatagramRejected) {
  auto r = world.host("a")->send({"b", 5000}, Bytes(2000, 0));
  EXPECT_EQ(r.code(), Errc::invalid_argument);
}

TEST_F(WorldTest, UnknownHostAndNoSharedNetwork) {
  EXPECT_EQ(world.host("a")->send({"ghost", 1}, Bytes{1}).code(), Errc::not_found);
  world.create_host("island");
  EXPECT_EQ(world.host("a")->send({"island", 1}, Bytes{1}).code(), Errc::unreachable);
}

TEST_F(WorldTest, UnboundPortCountsAsDrop) {
  world.host("a")->send({"b", 9999}, Bytes{1}).value();
  world.engine().run();
  EXPECT_EQ(world.network("lan")->stats().drops_unbound, 1u);
}

TEST_F(WorldTest, BindConflictAndUnbind) {
  auto h = [](const Packet&) {};
  world.host("b")->bind(5000, h).value();
  EXPECT_EQ(world.host("b")->bind(5000, h).code(), Errc::already_exists);
  world.host("b")->unbind(5000);
  EXPECT_TRUE(world.host("b")->bind(5000, h).ok());
}

TEST_F(WorldTest, EphemeralPortsDistinct) {
  auto* a = world.host("a");
  auto p1 = a->ephemeral_port();
  a->bind(p1, [](const Packet&) {}).value();
  auto p2 = a->ephemeral_port();
  EXPECT_NE(p1, p2);
  EXPECT_GE(p1, 49152);
}

TEST_F(WorldTest, DownHostDropsAtDelivery) {
  int received = 0;
  world.host("b")->bind(5000, [&](const Packet&) { ++received; }).value();
  world.host("a")->send({"b", 5000}, Bytes{1}).value();
  world.host("b")->set_up(false);  // dies while the packet is in flight
  world.engine().run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(world.network("lan")->stats().drops_down, 1u);

  // Host comes back: bindings survived the reboot.
  world.host("b")->set_up(true);
  world.host("a")->send({"b", 5000}, Bytes{1}).value();
  world.engine().run();
  EXPECT_EQ(received, 1);
}

TEST_F(WorldTest, DownSenderCannotSend) {
  world.host("a")->set_up(false);
  EXPECT_EQ(world.host("a")->send({"b", 5000}, Bytes{1}).code(), Errc::unreachable);
}

TEST_F(WorldTest, NetworkDownMakesUnreachable) {
  world.network("lan")->set_up(false);
  EXPECT_EQ(world.host("a")->send({"b", 5000}, Bytes{1}).code(), Errc::unreachable);
}

TEST(World, FastestSharedNetworkChosen) {
  // §5.3: dual-homed hosts use the fastest common network.
  World world(1);
  world.create_network("eth", ethernet100());
  world.create_network("atm", atm155());
  auto& a = world.create_host("a");
  auto& b = world.create_host("b");
  world.attach(a, *world.network("eth"));
  world.attach(a, *world.network("atm"));
  world.attach(b, *world.network("eth"));
  world.attach(b, *world.network("atm"));

  EXPECT_EQ(a.send({"b", 1}, Bytes(100, 0)).value(), "atm");

  // Preferred network overrides the speed ranking.
  SendOptions opts;
  opts.preferred_network = "eth";
  EXPECT_EQ(a.send({"b", 1}, Bytes(100, 0), opts).value(), "eth");

  // ATM NIC failure falls back to Ethernet (§6 route switching).
  a.nic_on("atm")->set_up(false);
  EXPECT_EQ(a.send({"b", 1}, Bytes(100, 0)).value(), "eth");
}

TEST(World, LossRateIsRespected) {
  World world(7);
  auto& net = world.create_network("lossy", internet_lossy());
  net.set_extra_loss(0.19);  // total 20%
  auto& a = world.create_host("a");
  auto& b = world.create_host("b");
  world.attach(a, net);
  world.attach(b, net);
  int received = 0;
  b.bind(1, [&](const Packet&) { ++received; }).value();
  const int n = 5000;
  for (int i = 0; i < n; ++i) a.send({"b", 1}, Bytes{1}).value();
  world.engine().run();
  EXPECT_NEAR(static_cast<double>(received) / n, 0.80, 0.03);
  EXPECT_EQ(net.stats().drops_loss + net.stats().packets_delivered,
            static_cast<std::uint64_t>(n));
}

TEST(World, BroadcastReachesAllOthers) {
  World world(3);
  auto& net = world.create_network("seg", ethernet100());
  for (const char* name : {"a", "b", "c", "d"})
    world.attach(world.create_host(name), net);
  int got_b = 0, got_c = 0, got_d = 0, got_a = 0;
  world.host("a")->bind(9, [&](const Packet&) { ++got_a; }).value();
  world.host("b")->bind(9, [&](const Packet&) { ++got_b; }).value();
  world.host("c")->bind(9, [&](const Packet&) { ++got_c; }).value();
  world.host("d")->bind(9, [&](const Packet&) { ++got_d; }).value();
  world.host("a")->broadcast("seg", 9, to_bytes("all")).value();
  world.engine().run();
  EXPECT_EQ(got_a, 0);  // sender does not hear itself
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(got_c, 1);
  EXPECT_EQ(got_d, 1);
}

TEST(World, DeterministicAcrossRuns) {
  auto run_once = [] {
    World world(1234);
    auto& net = world.create_network("n", internet_lossy());
    auto& a = world.create_host("a");
    auto& b = world.create_host("b");
    world.attach(a, net);
    world.attach(b, net);
    std::vector<SimTime> arrivals;
    b.bind(1, [&](const Packet&) { arrivals.push_back(world.now()); }).value();
    for (int i = 0; i < 200; ++i) a.send({"b", 1}, Bytes(100, 0)).value();
    world.engine().run();
    return arrivals;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---- Fault injection: FaultInjector unit behaviour ----

TEST(Fault, GilbertElliottEmpiricalLossNearStationaryMean) {
  FaultProfile profile;
  profile.burst = {0.05, 0.25, 0.01, 0.9};
  FaultInjector inj(profile, Rng(99));
  const int n = 20000;
  int dropped = 0;
  for (int i = 0; i < n; ++i)
    if (inj.judge("a", "b").drop) ++dropped;
  EXPECT_NEAR(static_cast<double>(dropped) / n, profile.burst.mean_loss(), 0.03);
  EXPECT_EQ(inj.stats().packets_judged, static_cast<std::uint64_t>(n));
  EXPECT_EQ(inj.stats().drops_burst, static_cast<std::uint64_t>(dropped));
}

TEST(Fault, PartitionBlocksAcrossGroupsOnly) {
  FaultInjector inj(FaultProfile{}, Rng(1));
  inj.set_partition({{"a", "b"}, {"c"}});
  EXPECT_TRUE(inj.partition_active());
  EXPECT_FALSE(inj.partitioned("a", "b"));  // same group
  EXPECT_TRUE(inj.partitioned("a", "c"));   // across groups
  EXPECT_TRUE(inj.judge("a", "c").drop);
  EXPECT_EQ(inj.stats().drops_partition, 1u);
  // Unnamed hosts share an implicit group: together, but cut off from all
  // named groups.
  EXPECT_FALSE(inj.partitioned("x", "y"));
  EXPECT_TRUE(inj.partitioned("x", "a"));
  EXPECT_TRUE(inj.partitioned("c", "y"));
  inj.heal_partition();
  EXPECT_FALSE(inj.partition_active());
  EXPECT_FALSE(inj.partitioned("a", "c"));
  EXPECT_FALSE(inj.judge("a", "c").drop);
}

TEST(Fault, CorruptPayloadFlipsBoundedBytesAndSkipsEmpty) {
  FaultProfile profile;
  profile.corrupt_max_bytes = 3;
  FaultInjector inj(profile, Rng(5));
  Bytes empty;
  inj.corrupt_payload(empty);  // must not crash or grow
  EXPECT_TRUE(empty.empty());
  for (int trial = 0; trial < 50; ++trial) {
    Bytes wire(64, 0xAB);
    inj.corrupt_payload(wire);
    ASSERT_EQ(wire.size(), 64u);
    int flipped = 0;
    for (auto b : wire)
      if (b != 0xAB) ++flipped;
    EXPECT_GE(flipped, 1) << trial;
    EXPECT_LE(flipped, 3) << trial;
  }
}

TEST(Fault, DuplicationAlwaysYieldsTwoCopiesAtProbabilityOne) {
  FaultProfile profile;
  profile.duplicate = 1.0;
  FaultInjector inj(profile, Rng(7));
  for (int i = 0; i < 20; ++i) {
    auto v = inj.judge("a", "b");
    EXPECT_FALSE(v.drop);
    EXPECT_EQ(v.copies, 2);
  }
  EXPECT_EQ(inj.stats().duplicated, 20u);
}

TEST(Fault, SameSeedSameVerdictSequence) {
  FaultProfile profile;
  profile.burst = {0.1, 0.3, 0.02, 0.8};
  profile.duplicate = 0.2;
  profile.reorder = 0.3;
  profile.corrupt = 0.1;
  FaultInjector x(profile, Rng(4242)), y(profile, Rng(4242));
  for (int i = 0; i < 500; ++i) {
    auto a = x.judge("a", "b");
    auto b = y.judge("a", "b");
    EXPECT_EQ(a.drop, b.drop) << i;
    EXPECT_EQ(a.corrupt, b.corrupt) << i;
    EXPECT_EQ(a.copies, b.copies) << i;
    EXPECT_EQ(a.extra_delay, b.extra_delay) << i;
    EXPECT_EQ(a.dup_delay, b.dup_delay) << i;
  }
}

// ---- Fault injection: World-level integration ----

TEST(Fault, CertainLossDropsEverySentPacket) {
  World world(11);
  auto& net = world.create_network("n", ethernet100());
  auto& a = world.create_host("a");
  auto& b = world.create_host("b");
  world.attach(a, net);
  world.attach(b, net);
  FaultPlan plan(world, 77);
  FaultProfile profile;
  profile.burst.loss_good = 1.0;
  plan.inject("n", profile);
  int received = 0;
  b.bind(1, [&](const Packet&) { ++received; }).value();
  for (int i = 0; i < 50; ++i) a.send({"b", 1}, Bytes{1}).value();
  world.engine().run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().drops_fault, 50u);
}

TEST(Fault, CertainDuplicationDeliversTwice) {
  World world(12);
  auto& net = world.create_network("n", ethernet100());
  auto& a = world.create_host("a");
  auto& b = world.create_host("b");
  world.attach(a, net);
  world.attach(b, net);
  FaultPlan plan(world, 78);
  FaultProfile profile;
  profile.duplicate = 1.0;
  plan.inject("n", profile);
  int received = 0;
  b.bind(1, [&](const Packet&) { ++received; }).value();
  for (int i = 0; i < 25; ++i) a.send({"b", 1}, Bytes{1}).value();
  world.engine().run();
  EXPECT_EQ(received, 50);
  EXPECT_EQ(net.stats().fault_duplicates, 25u);
}

TEST(Fault, PlanWindowsFireAtScheduledVirtualTimes) {
  using duration::milliseconds;
  World world(13);
  auto& net = world.create_network("n", ethernet100());
  auto& a = world.create_host("a");
  auto& b = world.create_host("b");
  world.attach(a, net);
  world.attach(b, net);
  obs::Tracer::global().clear();

  FaultPlan plan(world, 79);
  plan.crash_host("b", milliseconds(10), milliseconds(30));
  plan.partition("n", {{"a"}, {"b"}}, milliseconds(50), milliseconds(70));

  auto up_at = [&](SimTime t) {
    world.engine().run_until(t);
    return world.host("b")->up();
  };
  EXPECT_TRUE(up_at(milliseconds(5)));
  EXPECT_FALSE(up_at(milliseconds(20)));
  EXPECT_TRUE(up_at(milliseconds(40)));
  world.engine().run_until(milliseconds(60));
  ASSERT_NE(plan.injector("n"), nullptr);
  EXPECT_TRUE(plan.injector("n")->partition_active());
  world.engine().run_until(milliseconds(80));
  EXPECT_FALSE(plan.injector("n")->partition_active());

  // Each action emitted a "fault" instant at its virtual time, in order.
  std::vector<std::pair<std::int64_t, std::string>> faults;
  for (const auto& e : obs::Tracer::global().events())
    if (e.cat == "fault") faults.emplace_back(e.ts, e.name);
  ASSERT_EQ(faults.size(), 4u);
  EXPECT_EQ(faults[0], (std::pair<std::int64_t, std::string>{milliseconds(10), "host.crash"}));
  EXPECT_EQ(faults[1], (std::pair<std::int64_t, std::string>{milliseconds(30), "host.restart"}));
  EXPECT_EQ(faults[2], (std::pair<std::int64_t, std::string>{milliseconds(50), "partition.start"}));
  EXPECT_EQ(faults[3], (std::pair<std::int64_t, std::string>{milliseconds(70), "partition.heal"}));
}

// ---- Sharded engine: conservative-window primitives and the World driver ----

TEST(Engine, RunBeforeIsExclusiveAndKeepsClockAtLastEvent) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(50, [&] { order.push_back(0); });
  engine.schedule_at(100, [&] { order.push_back(1); });
  // Window [0, 100): the t=100 event is the horizon and must not run.
  EXPECT_EQ(engine.run_before(100), 1u);
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(engine.now(), 50);  // not advanced to the horizon
  EXPECT_EQ(engine.next_event_time(), 100);
  engine.run_before(101);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(engine.next_event_time(), Engine::kNever);
  engine.advance_to(500);
  EXPECT_EQ(engine.now(), 500);
}

TEST(Engine, EqualTimeFifoHoldsAcrossWindowBarrier) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(100, [&] { order.push_back(1); });
  engine.schedule_at(100, [&] { order.push_back(2); });
  engine.run_before(100);  // barrier: nothing at t < 100 to run
  // A cross-shard arrival at exactly t=100, inserted at the barrier, was
  // scheduled after the two local events and must fire after them.
  engine.schedule_at(100, [&] { order.push_back(3); });
  engine.run_before(101);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, RunBeforeCanStopAtStrongExhaustion) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_weak(10, [&] { order.push_back(0); });
  engine.schedule(20, [&] { order.push_back(1); });
  engine.schedule_weak(30, [&] { order.push_back(2); });
  // Engine::run semantics per window: weak events run while a strong event
  // is still pending, and the run stops once none are.
  EXPECT_EQ(engine.run_before(100, /*weak_too=*/false), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(engine.strong_pending(), 0u);
  EXPECT_EQ(engine.run_before(100, /*weak_too=*/true), 1u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(World, ShardedCrossShardDeliveryArrives) {
  World world(7, /*shards=*/2);
  auto& net = world.create_network("wan", wan_t3());
  auto& a = world.create_host("a", 0);
  auto& b = world.create_host("b", 1);
  world.attach(a, net);
  world.attach(b, net);
  int received = 0;
  b.bind(5, [&](const Packet&) { ++received; }).value();
  a.engine().schedule_at(duration::milliseconds(1),
                         [&] { a.send({"b", 5}, Bytes(64, 0x5A)).value(); });
  world.run_until(duration::seconds(1));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(world.lookahead(), wan_t3().latency);
  EXPECT_GE(world.run_stats().cross_shard_packets, 1u);
  EXPECT_GE(world.run_stats().windows, 1u);
  EXPECT_EQ(world.now(), duration::seconds(1));
}

TEST(World, MailboxDrainOrdersEqualArrivalsBySourceShard) {
  // Two senders on different shards whose packets reach the same
  // destination at the identical virtual time: the barrier drain must
  // order them by source shard, not by which worker thread got there
  // first.  Swapping the placement must swap the delivery order.
  for (int flip = 0; flip < 2; ++flip) {
    World world(9, /*shards=*/3);
    auto& net = world.create_network("wan", wan_t3());
    auto& d = world.create_host("d", 0);
    auto& a = world.create_host("a", flip != 0 ? 2 : 1);
    auto& b = world.create_host("b", flip != 0 ? 1 : 2);
    world.attach(d, net);
    world.attach(a, net);
    world.attach(b, net);
    std::vector<std::string> order;
    d.bind(5, [&](const Packet& p) { order.push_back(p.src.host); }).value();
    a.engine().schedule_at(duration::milliseconds(1),
                           [&] { a.send({"d", 5}, Bytes(100, 1)).value(); });
    b.engine().schedule_at(duration::milliseconds(1),
                           [&] { b.send({"d", 5}, Bytes(100, 2)).value(); });
    world.run_until(duration::seconds(1));
    ASSERT_EQ(order.size(), 2u) << "flip " << flip;
    EXPECT_EQ(order[0], flip != 0 ? "b" : "a") << "lower source shard delivers first";
  }
}

TEST(World, SingleShardRunUntilMatchesEngineRunUntil) {
  auto run = [](bool via_world) {
    World world(1234);
    auto& net = world.create_network("n", internet_lossy());
    auto& a = world.create_host("a");
    auto& b = world.create_host("b");
    world.attach(a, net);
    world.attach(b, net);
    std::vector<SimTime> arrivals;
    b.bind(1, [&](const Packet&) { arrivals.push_back(world.now()); }).value();
    for (int i = 0; i < 100; ++i) a.send({"b", 1}, Bytes(100, 0)).value();
    if (via_world)
      world.run_until(duration::seconds(2));
    else
      world.engine().run_until(duration::seconds(2));
    return arrivals;
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace snipe::simnet
