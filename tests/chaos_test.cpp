// Chaos suite: the transports and services under seeded adversarial fault
// plans (simnet/fault.hpp) — burst loss, duplication, reordering, byte
// corruption, partitions, and crash/restart schedules.
//
// Every scenario is a pure function of one 64-bit seed; the acceptance
// scenarios run each seed twice and require bit-identical virtual-time
// traces, which is the replay contract DESIGN.md §fault documents.  Set
// SNIPE_CHAOS_SEED to reproduce a failing CI run (see chaos_util.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <mutex>
#include <set>

#include "chaos_util.hpp"
#include "obs/flight.hpp"
#include "daemon/daemon.hpp"
#include "files/fileserver.hpp"
#include "rcds/server.hpp"
#include "rm/resource_manager.hpp"
#include "simnet/topo.hpp"
#include "transport/ethmcast.hpp"
#include "transport/srudp.hpp"
#include "transport/stream.hpp"

namespace snipe {
namespace {

using simnet::Address;
using simnet::FaultPlan;
using simnet::FaultProfile;
using simnet::World;

constexpr int kSeeds = 5;  ///< distinct seeds per acceptance scenario

// ---- SRUDP gauntlet: the ISSUE acceptance scenario -------------------------
//
// Burst loss + duplication + reordering + a mid-transfer partition + a
// receiver crash/restart, all at once.  SRUDP promises exactly-once,
// in-order, intact delivery per peer pair as long as the sender's TTL
// (30 s) outlives the outage windows — so after the dust settles nothing
// may be lost, duplicated, reordered, expired, or skipped.

struct GauntletResult {
  bool intact = false;
  std::string why;
  std::uint64_t delivered = 0;
  std::uint64_t expired = 0;
  std::uint64_t skipped = 0;
  std::size_t pending = 0;
  std::uint64_t drops_fault = 0;      ///< scenario actually bit
  std::uint64_t fault_duplicates = 0;
  std::string digest;  ///< trace + end-state fingerprint for replay checks
};

GauntletResult run_srudp_gauntlet(std::uint64_t seed) {
  obs::Tracer::global().clear();
  World world(seed);
  world.create_network("lan", simnet::ethernet100());
  world.attach(world.create_host("a"), *world.network("lan"));
  world.attach(world.create_host("b"), *world.network("lan"));

  transport::SrudpEndpoint sender(*world.host("a"), 7000);
  transport::SrudpEndpoint receiver(*world.host("b"), 7000);
  chaos::DeliveryLedger ledger;
  receiver.set_handler([&ledger](const Address& src, Payload m) {
    ledger.on_deliver(src.host, std::move(m));
  });

  FaultPlan plan(world, seed * 0x9E3779B97F4A7C15ULL + 1);
  FaultProfile profile;
  profile.burst = {/*p_enter_bad=*/0.02, /*p_exit_bad=*/0.2,
                   /*loss_good=*/0.01, /*loss_bad=*/0.7};
  profile.duplicate = 0.05;
  profile.reorder = 0.1;
  profile.reorder_jitter = duration::milliseconds(2);
  plan.inject("lan", profile);
  plan.partition("lan", {{"a"}, {"b"}}, duration::milliseconds(300),
                 duration::milliseconds(600));
  plan.crash_host("b", duration::milliseconds(700), duration::milliseconds(900));

  Rng workload(seed ^ 0xC0FFEEULL);
  const Address dst{"b", 7000};
  for (std::uint32_t i = 0; i < 40; ++i) {
    std::size_t size = 1 + static_cast<std::size_t>(workload.next_below(20000));
    Bytes payload = chaos::chaos_payload(size, seed, i);
    ledger.expect_sent("a", payload);
    world.engine().schedule_at(
        duration::milliseconds(25) * i,
        [&sender, dst, payload = std::move(payload)]() mutable {
          sender.send(dst, std::move(payload));
        });
  }
  world.engine().run_until(duration::seconds(45));

  GauntletResult r;
  r.intact = ledger.intact(&r.why);
  r.delivered = receiver.stats().messages_delivered.v;
  r.expired = sender.stats().messages_expired.v;
  r.skipped = receiver.stats().messages_skipped.v;
  r.pending = sender.pending();
  r.drops_fault = world.network("lan")->stats().drops_fault;
  r.fault_duplicates = world.network("lan")->stats().fault_duplicates;
  // Excluding "flow" makes the digest comparable between flow-tracing-on
  // and -off runs — the replay contract says everything else is identical.
  r.digest = chaos::trace_digest("flow") + "|delivered=" + std::to_string(r.delivered) +
             "|retx=" + std::to_string(sender.stats().fragments_retransmitted.v) +
             "|dropsF=" + std::to_string(world.network("lan")->stats().drops_fault) +
             "|dups=" + std::to_string(world.network("lan")->stats().fault_duplicates);
  return r;
}

TEST(ChaosSrudp, GauntletExactlyOnceInOrderAcrossSeeds) {
  for (int i = 0; i < kSeeds; ++i) {
    std::uint64_t seed = chaos::chaos_seed() + static_cast<std::uint64_t>(i);
    GauntletResult first = run_srudp_gauntlet(seed);
    EXPECT_TRUE(first.intact) << "seed " << seed << ": " << first.why;
    EXPECT_EQ(first.delivered, 40u) << "seed " << seed;
    EXPECT_EQ(first.expired, 0u) << "seed " << seed;
    EXPECT_EQ(first.skipped, 0u) << "seed " << seed;
    EXPECT_EQ(first.pending, 0u) << "seed " << seed;
    // A vacuous pass (fault layer never fired) would be a test bug.
    EXPECT_GT(first.drops_fault, 0u) << "seed " << seed;
    EXPECT_GT(first.fault_duplicates, 0u) << "seed " << seed;
    // Replay: the same seed must reproduce the identical virtual-time run.
    GauntletResult replay = run_srudp_gauntlet(seed);
    EXPECT_EQ(first.digest, replay.digest) << "seed " << seed << " did not replay";
    chaos::log_digest("srudp_gauntlet", seed, first.digest);
  }
}

// ---- SRUDP under byte corruption -------------------------------------------
//
// The wire format carries no payload checksum (as in 1998), so flipped
// bytes can reach the application or even forge protocol state: a mangled
// STATUS can falsely ack a fragment, and a flipped msg_id on a
// single-fragment DATA mints a *new* message carrying a sent payload —
// which completes, delivers, and later duplicates or reorders against the
// original (dedup is per msg_id; a forged id defeats it).  What the
// protocol *does* promise under corruption is: no crashes (the decoders
// reject structurally-bad packets, including trailing bytes from a
// shrunken length field — see property_test.cpp), every delivered length
// is a length the sender actually sent (sizes are pairwise-distinct, so a
// structurally-mangled delivery would stand out), the damage stays
// bounded, and the run replays bit-for-bit from its seed.

struct CorruptionResult {
  std::vector<std::size_t> sent_sizes;
  std::vector<std::size_t> got_sizes;
  std::string digest;
};

CorruptionResult run_srudp_corruption(std::uint64_t seed) {
  obs::Tracer::global().clear();
  World world(seed);
  world.create_network("lan", simnet::ethernet100());
  world.attach(world.create_host("a"), *world.network("lan"));
  world.attach(world.create_host("b"), *world.network("lan"));

  transport::SrudpConfig cfg;
  cfg.partial_ttl = duration::milliseconds(500);  // heal poisoned reassembly fast
  transport::SrudpEndpoint sender(*world.host("a"), 7000, cfg);
  transport::SrudpEndpoint receiver(*world.host("b"), 7000, cfg);
  CorruptionResult r;
  receiver.set_handler(
      [&r](const Address&, Payload m) { r.got_sizes.push_back(m.size()); });

  FaultPlan plan(world, seed + 77);
  FaultProfile profile;
  profile.burst = {0.01, 0.3, 0.01, 0.5};
  profile.reorder = 0.05;
  profile.corrupt = 0.05;
  profile.corrupt_max_bytes = 4;
  plan.inject("lan", profile);

  const Address dst{"b", 7000};
  for (std::uint32_t i = 0; i < 30; ++i) {
    std::size_t size = 100 + 531 * i;  // distinct; single- and multi-fragment
    Bytes payload = chaos::chaos_payload(size, seed, i);
    r.sent_sizes.push_back(size);
    world.engine().schedule_at(
        duration::milliseconds(30) * i,
        [&sender, dst, payload = std::move(payload)]() mutable {
          sender.send(dst, std::move(payload));
        });
  }
  world.engine().run_until(duration::seconds(60));
  r.digest = chaos::trace_digest() + "|got=" + std::to_string(r.got_sizes.size());
  return r;
}

TEST(ChaosSrudp, CorruptionDamageIsBoundedAndReplaysExactly) {
  for (int i = 0; i < 3; ++i) {
    std::uint64_t seed = chaos::chaos_seed() + 100 + static_cast<std::uint64_t>(i);
    CorruptionResult first = run_srudp_corruption(seed);
    // Every delivered length is one the sender sent: the decoders and the
    // reassembly length check make a size-mutating corruption impossible
    // even though payload *bytes* may arrive mangled.
    std::set<std::size_t> sent(first.sent_sizes.begin(), first.sent_sizes.end());
    std::set<std::size_t> distinct_got;
    for (std::size_t size : first.got_sizes) {
      EXPECT_TRUE(sent.count(size)) << "seed " << seed << ": fabricated length " << size;
      distinct_got.insert(size);
    }
    // Bounded damage: nearly all of the workload gets through, and forged
    // msg_ids can only mint a couple of extra deliveries per run.
    EXPECT_GE(distinct_got.size(), 25u) << "seed " << seed;
    EXPECT_LE(first.got_sizes.size(), first.sent_sizes.size() + 2) << "seed " << seed;
    CorruptionResult replay = run_srudp_corruption(seed);
    EXPECT_EQ(first.digest, replay.digest) << "seed " << seed << " did not replay";
    chaos::log_digest("srudp_corruption", seed, first.digest);
  }
}

// ---- Byte stream under loss + duplication + reordering + partition ---------

TEST(ChaosStream, MessagesSurviveLossDupReorderAndPartition) {
  for (int s = 0; s < 3; ++s) {
    std::uint64_t seed = chaos::chaos_seed() + 200 + static_cast<std::uint64_t>(s);
    World world(seed);
    world.create_network("lan", simnet::ethernet100());
    world.attach(world.create_host("a"), *world.network("lan"));
    world.attach(world.create_host("b"), *world.network("lan"));

    transport::StreamEndpoint client(*world.host("a"), 5000);
    transport::StreamEndpoint server(*world.host("b"), 5000);
    chaos::DeliveryLedger ledger;
    std::vector<std::shared_ptr<transport::StreamConnection>> accepted;
    server.listen([&](std::shared_ptr<transport::StreamConnection> conn) {
      conn->set_message_handler(
          [&ledger](Payload m) { ledger.on_deliver("a", m); });
      accepted.push_back(std::move(conn));
    });
    auto conn = client.connect({"b", 5000});

    FaultPlan plan(world, seed + 5);
    FaultProfile profile;
    profile.burst = {0.02, 0.25, 0.01, 0.6};
    profile.duplicate = 0.05;
    profile.reorder = 0.1;
    profile.reorder_jitter = duration::milliseconds(1);
    plan.inject("lan", profile);
    plan.partition("lan", {{"a"}, {"b"}}, duration::milliseconds(200),
                   duration::milliseconds(800));

    Rng workload(seed ^ 0xBEEFULL);
    for (std::uint32_t i = 0; i < 30; ++i) {
      std::size_t size = 1 + static_cast<std::size_t>(workload.next_below(50000));
      Bytes payload = chaos::chaos_payload(size, seed, i);
      ledger.expect_sent("a", payload);
      world.engine().schedule_at(duration::milliseconds(20) * i,
                                 [conn, payload = std::move(payload)] {
                                   conn->send_message(payload);
                                 });
    }
    world.engine().run_until(duration::seconds(30));

    std::string why;
    EXPECT_TRUE(ledger.intact(&why)) << "seed " << seed << ": " << why;
    EXPECT_EQ(conn->unacked_bytes(), 0u) << "seed " << seed;
  }
}

// ---- Ethernet multicast under burst loss + duplication + reordering --------
//
// NACK-driven repair recovers any message a receiver saw at least one
// fragment of.  Repairs can land after a newer message completed, so
// cross-message delivery order is not guaranteed under chaos — the
// invariant is exactly-once and intact per (sender, receiver), checked as
// multiset equality keyed by the pairwise-distinct sizes.

TEST(ChaosEthMcast, AllMembersReceiveEverythingExactlyOnce) {
  for (int s = 0; s < 3; ++s) {
    std::uint64_t seed = chaos::chaos_seed() + 300 + static_cast<std::uint64_t>(s);
    World world(seed);
    world.create_network("seg", simnet::ethernet100());
    const char* names[] = {"m0", "m1", "m2", "m3"};
    for (const char* n : names)
      world.attach(world.create_host(n), *world.network("seg"));

    std::vector<std::unique_ptr<transport::EthMcastEndpoint>> members;
    std::vector<std::vector<Bytes>> got(4);
    for (int i = 0; i < 4; ++i) {
      members.push_back(std::make_unique<transport::EthMcastEndpoint>(
          *world.host(names[i]), "seg", "grp", 6000));
      members.back()->set_handler(
          [&got, i](const Address&, Payload m) { got[i].push_back(m.to_bytes()); });
    }

    FaultPlan plan(world, seed + 9);
    FaultProfile profile;
    profile.burst = {0.01, 0.5, 0.01, 0.5};
    profile.duplicate = 0.05;
    profile.reorder = 0.1;
    profile.reorder_jitter = duration::milliseconds(1);
    plan.inject("seg", profile);

    std::vector<Bytes> sent;
    for (std::uint32_t i = 0; i < 12; ++i) {
      // 2..5 fragments at the ~1.5 kB ethernet MTU; a whole message has to
      // dodge loss entirely to be missed, which these rates make negligible.
      Bytes payload = chaos::chaos_payload(3000 + 500 * i, seed, i);
      sent.push_back(payload);
      world.engine().schedule_at(duration::milliseconds(50) * i,
                                 [&m = *members[0], payload = std::move(payload)]() mutable {
                                   m.send(std::move(payload));
                                 });
    }
    world.engine().run_until(duration::seconds(20));

    auto by_size = [](const Bytes& a, const Bytes& b) { return a.size() < b.size(); };
    std::sort(sent.begin(), sent.end(), by_size);
    for (int i = 1; i < 4; ++i) {
      std::sort(got[i].begin(), got[i].end(), by_size);
      EXPECT_EQ(got[i], sent) << "seed " << seed << ": member " << names[i]
                              << " delivered " << got[i].size() << "/12";
    }
  }
}

// ---- RCDS replicas converge after a partition heals ------------------------

std::string canonical_record(const std::vector<rcds::Assertion>& assertions) {
  std::vector<std::string> lines;
  for (const auto& a : assertions)
    lines.push_back(a.name + "=" + a.value + "@" + std::to_string(a.timestamp) + "/" +
                    a.origin + (a.tombstone ? "!" : ""));
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (auto& l : lines) out += l + "\n";
  return out;
}

TEST(ChaosRcds, ReplicasConvergeAfterPartitionHeals) {
  std::uint64_t seed = chaos::chaos_seed() + 400;
  World world(seed);
  world.create_network("lan", simnet::ethernet100());
  for (const char* n : {"h1", "h2", "h3"})
    world.attach(world.create_host(n), *world.network("lan"));

  std::vector<std::unique_ptr<rcds::RcServer>> servers;
  for (const char* n : {"h1", "h2", "h3"})
    servers.push_back(std::make_unique<rcds::RcServer>(*world.host(n)));
  for (auto& s : servers) {
    std::vector<Address> peers;
    for (auto& o : servers)
      if (o != s) peers.push_back(o->address());
    s->set_peers(peers);
  }

  FaultPlan plan(world, seed + 13);
  plan.inject("lan", FaultProfile{});  // pure partition, no stochastic faults
  plan.partition("lan", {{"h1", "h2"}, {"h3"}}, duration::milliseconds(100),
                 duration::seconds(5));

  auto& engine = world.engine();
  // Before the partition: a write that replicates everywhere.
  engine.schedule_at(duration::milliseconds(50), [&] {
    servers[0]->apply("urn:x", {rcds::op_set("k", "v0")});
  });
  // During it: conflicting writes on both sides, plus one-sided writes.
  engine.schedule_at(duration::seconds(1), [&] {
    servers[0]->apply("urn:a", {rcds::op_set("owner", "s1")});
    servers[2]->apply("urn:b", {rcds::op_set("k", "minority")});
  });
  engine.schedule_at(duration::seconds(2), [&] {
    servers[2]->apply("urn:a", {rcds::op_set("owner", "s3")});
  });
  // Heal at 5 s; srudp's 30 s buffering redelivers the missed replication
  // pushes, and anti-entropy (10 s period) repairs anything beyond that.
  engine.run_until(duration::seconds(40));

  for (const char* uri : {"urn:x", "urn:a", "urn:b"}) {
    std::string want = canonical_record(servers[0]->get(uri));
    EXPECT_FALSE(want.empty()) << uri;
    for (std::size_t i = 1; i < servers.size(); ++i)
      EXPECT_EQ(canonical_record(servers[i]->get(uri)), want)
          << "replica " << i << " diverged on " << uri;
  }
  // The conflict resolved to the later write on every replica.
  for (auto& s : servers) {
    bool owner_is_s3 = false;
    for (const auto& a : s->get("urn:a"))
      if (a.name == "owner" && a.value == "s3" && !a.tombstone) owner_is_s3 = true;
    EXPECT_TRUE(owner_is_s3);
  }
}

// ---- RM failover across a host crash/restart schedule ----------------------

class NapTask final : public daemon::ManagedTask {
 public:
  NapTask(simnet::Engine& engine, const daemon::SpawnRequest& req,
          daemon::TaskHandle& handle)
      : engine_(engine), handle_(handle),
        delay_(req.args.empty() ? 0 : req.args[0]) {}
  void start() override {
    timer_ = engine_.schedule(delay_, [this] { handle_.exited(0); });
  }
  void kill() override { engine_.cancel(timer_); }

 private:
  simnet::Engine& engine_;
  daemon::TaskHandle& handle_;
  SimDuration delay_;
  simnet::TimerId timer_;
};

TEST(ChaosRm, CrashedHostAvoidedThenReadoptedAfterRestart) {
  std::uint64_t seed = chaos::chaos_seed() + 500;
  World world(seed);
  Rng rng(seed + 1);
  world.create_network("lan", simnet::ethernet100());
  for (const char* n : {"rc", "nodeA", "nodeB", "rmhost", "client"})
    world.attach(world.create_host(n), *world.network("lan"));
  rcds::RcServer rc(*world.host("rc"));

  auto nap_factory = [&world](const daemon::SpawnRequest& req, daemon::TaskHandle& h)
      -> Result<std::unique_ptr<daemon::ManagedTask>> {
    return std::unique_ptr<daemon::ManagedTask>(
        new NapTask(world.engine(), req, h));
  };
  daemon::DaemonConfig cfg;
  cfg.playground.require_signature = false;
  std::vector<Address> replicas{rc.address()};
  daemon::SnipeDaemon daemon_a(*world.host("nodeA"), replicas);
  daemon::SnipeDaemon daemon_b(*world.host("nodeB"), replicas);
  daemon_a.register_program("nap", nap_factory);
  daemon_b.register_program("nap", nap_factory);
  world.engine().run();

  auto principal = crypto::Principal::create("urn:snipe:rm:chaos", rng);
  rm::ResourceManager rm(*world.host("rmhost"), replicas, principal);
  rm.manage_host("nodeA", daemon_a.address());
  rm.manage_host("nodeB", daemon_b.address());
  world.engine().run_for(duration::seconds(5));  // pull facts + first polls
  ASSERT_EQ(rm.live_hosts(), 2u);

  // Crash nodeA at 6 s, reboot it at 20 s (bindings survive, §5.6's model).
  FaultPlan plan(world, seed + 2);
  plan.crash_host("nodeA", duration::seconds(6), duration::seconds(20));

  world.engine().run_until(duration::seconds(16));
  EXPECT_EQ(rm.live_hosts(), 1u) << "crashed host still considered live";

  // Allocations during the outage all land on the survivor.
  transport::RpcEndpoint client(*world.host("client"), 9400);
  for (int i = 0; i < 2; ++i) {
    daemon::SpawnRequest req;
    req.program = "nap";
    req.name = "job" + std::to_string(i);
    req.args = {duration::seconds(600)};
    bool replied = false;
    Result<Bytes> result(Errc::state_error, "unset");
    client.call(rm.address(), rm::tags::kAllocate, req.encode(), [&](Result<Bytes> r) {
      replied = true;
      result = r;
    });
    while (!replied && world.engine().step()) {
    }
    ASSERT_TRUE(result.ok()) << result.error().to_string();
  }
  EXPECT_EQ(daemon_b.running_tasks(), 2u);
  EXPECT_EQ(daemon_a.running_tasks(), 0u);

  // After the reboot the next polls resurrect it in the pool.
  world.engine().run_until(duration::seconds(30));
  EXPECT_EQ(rm.live_hosts(), 2u) << "rebooted host never readopted";
}

// ---- obs metrics agree with endpoint stats under induced expiry/skip -------

// ---- Striped file transfers under fire ------------------------------------
//
// The ISSUE acceptance scenario for the file service: a striped read whose
// serving replica is killed mid-stream must complete from the survivors —
// no wedge, content hash verified — with the stall detection and stripe
// re-issue visible in the flight recorder.

struct StripedChaosResult {
  bool read_ok = false;
  std::string why;
  Bytes content;        ///< what the read returned
  Bytes expected;       ///< what was written
  bool saw_stall = false;
  bool saw_reissue = false;
  std::string digest;
};

StripedChaosResult run_striped_chaos(std::uint64_t seed, bool crash_server,
                                     bool lossy) {
  obs::Tracer::global().clear();
  obs::FlightRecorder::global().clear();
  World world(seed);
  world.create_network("lan", simnet::ethernet100());
  for (const char* n : {"rc", "fs1", "fs2", "fs3", "app"})
    world.attach(world.create_host(n), *world.network("lan"));
  rcds::RcServer rc(*world.host("rc"));
  std::vector<Address> replicas{rc.address()};

  files::FileServerConfig scfg;
  scfg.replication_factor = 3;
  files::FileServer fs1(*world.host("fs1"), replicas, files::FileServer::kDefaultPort, scfg);
  files::FileServer fs2(*world.host("fs2"), replicas, files::FileServer::kDefaultPort, scfg);
  files::FileServer fs3(*world.host("fs3"), replicas, files::FileServer::kDefaultPort, scfg);
  fs1.set_peers({fs2.address(), fs3.address()});
  fs2.set_peers({fs3.address(), fs1.address()});
  fs3.set_peers({fs1.address(), fs2.address()});

  transport::RpcEndpoint rpc(*world.host("app"), 9200);
  files::FileClientConfig ccfg;
  ccfg.chunk = 8192;
  ccfg.stripes = 3;
  files::FileClient client(rpc, replicas, ccfg);

  StripedChaosResult out;
  // Big enough that a stripe outlives the srudp window a server can flush
  // before the scheduled kill: the crash must land mid-stream, with most
  // of the dead server's stripe still unsent.
  const std::size_t size = (crash_server ? 2'400'000 : 240'000) +
                           static_cast<std::size_t>(seed % 4096);
  out.expected = chaos::chaos_payload(size, seed, 1);
  Result<void> wrote(Errc::state_error, "unset");
  client.write(fs1.address(), "lifn://chaos/striped", out.expected,
               [&](Result<void> r) { wrote = r; });
  world.engine().run();
  if (!wrote.ok()) {
    out.why = "write failed: " + wrote.error().to_string();
    return out;
  }

  FaultPlan plan(world, seed * 0x9E3779B97F4A7C15ULL + 11);
  if (lossy) {
    FaultProfile profile;
    profile.burst = {/*p_enter_bad=*/0.02, /*p_exit_bad=*/0.2,
                     /*loss_good=*/0.01, /*loss_bad=*/0.5};
    profile.duplicate = 0.03;
    profile.reorder = 0.05;
    profile.reorder_jitter = duration::milliseconds(1);
    plan.inject("lan", profile);
    plan.partition("lan", {{"fs2"}, {"rc", "fs1", "fs3", "app"}},
                   world.engine().now() + duration::milliseconds(50),
                   world.engine().now() + duration::milliseconds(400));
  }
  if (crash_server) {
    // Kill a serving replica shortly after the stripes open — mid-stream,
    // before its chunk queue drains.
    world.engine().schedule(duration::milliseconds(2),
                            [&world] { world.host("fs1")->set_up(false); });
  }

  Result<Bytes> read(Errc::state_error, "unset");
  client.read("lifn://chaos/striped", [&](Result<Bytes> r) { read = r; });
  world.engine().run_for(duration::seconds(60));

  out.read_ok = read.ok();
  if (!read.ok())
    out.why = "read failed: " + read.error().to_string();
  else
    out.content = read.value();
  for (const auto& e : obs::FlightRecorder::global().events("app")) {
    if (e.what == "stripe_stall") out.saw_stall = true;
    if (e.what == "stripe_reissue") out.saw_reissue = true;
  }
  out.digest = chaos::trace_digest();
  return out;
}

TEST(ChaosFiles, StripedReadCompletesAfterServingReplicaCrash) {
  for (int i = 0; i < kSeeds; ++i) {
    std::uint64_t seed = chaos::chaos_seed() + 600 + i;
    auto r = run_striped_chaos(seed, /*crash_server=*/true, /*lossy=*/false);
    ASSERT_TRUE(r.read_ok) << "seed " << seed << ": " << r.why;
    // read() verifies the registered SHA-256 before delivering, so equality
    // here is belt-and-braces on top of the hash check.
    EXPECT_EQ(r.content, r.expected) << "seed " << seed;
    // The recovery must be observable: the client stalled on the dead
    // replica's stripe and re-issued it.
    EXPECT_TRUE(r.saw_stall || r.saw_reissue) << "seed " << seed;
    EXPECT_TRUE(r.saw_reissue) << "seed " << seed;
    chaos::log_digest("files_striped_crash", seed, r.digest);
  }
}

TEST(ChaosFiles, StripedTransfersUnderLossReplayExactly) {
  // Loss, duplication, reordering and a brief partition of one replica:
  // the striped transfer must still complete intact, and the same seed
  // must reproduce the identical virtual-time trace (the replay contract).
  for (int i = 0; i < kSeeds; ++i) {
    std::uint64_t seed = chaos::chaos_seed() + 650 + i;
    auto first = run_striped_chaos(seed, /*crash_server=*/false, /*lossy=*/true);
    ASSERT_TRUE(first.read_ok) << "seed " << seed << ": " << first.why;
    EXPECT_EQ(first.content, first.expected) << "seed " << seed;
    auto second = run_striped_chaos(seed, /*crash_server=*/false, /*lossy=*/true);
    ASSERT_TRUE(second.read_ok) << "seed " << seed << ": " << second.why;
    EXPECT_EQ(first.digest, second.digest) << "seed " << seed;
    chaos::log_digest("files_striped_lossy", seed, first.digest);
  }
}

TEST(ChaosFiles, WriterCrashMidSinkExpiresWithoutStoring) {
  // A writer host dies between kOpenSink and the final chunks; the sink's
  // idle TTL must reap the half-written buffer and nothing may be stored.
  std::uint64_t seed = chaos::chaos_seed() + 700;
  World world(seed);
  world.create_network("lan", simnet::ethernet100());
  for (const char* n : {"rc", "fs", "writer"})
    world.attach(world.create_host(n), *world.network("lan"));
  rcds::RcServer rc(*world.host("rc"));
  files::FileServer fs(*world.host("fs"), {rc.address()});

  transport::RpcEndpoint rpc(*world.host("writer"), 9200);
  files::FileClient client(rpc, {rc.address()});
  client.write(fs.address(), "lifn://chaos/halfwrite",
               chaos::chaos_payload(500'000, seed, 2), [](Result<void>) {});
  // Kill the writer almost immediately — the sink is open, most chunks
  // are still queued in the writer's srudp buffers.
  world.engine().schedule(duration::milliseconds(1),
                          [&world] { world.host("writer")->set_up(false); });
  world.engine().run_for(duration::seconds(200));

  EXPECT_EQ(fs.open_sinks(), 0u);
  EXPECT_FALSE(fs.has("lifn://chaos/halfwrite"));
  EXPECT_GE(fs.stats().sinks_expired + fs.stats().sinks_incomplete, 1u);
}

TEST(ChaosFiles, RepairConvergesThenGoesQuiet) {
  // Kill a replica long enough for repair to re-create the lost copy on a
  // fresh peer, then verify the daemons go quiet: once the replica count
  // meets the target, further ticks must push nothing (no repair churn).
  std::uint64_t seed = chaos::chaos_seed() + 710;
  World world(seed);
  world.create_network("lan", simnet::ethernet100());
  for (const char* n : {"rc", "fs1", "fs2", "fs3", "app"})
    world.attach(world.create_host(n), *world.network("lan"));
  rcds::RcServer rc(*world.host("rc"));
  std::vector<Address> replicas{rc.address()};
  files::FileServerConfig cfg;
  cfg.replication_factor = 2;
  files::FileServer fs1(*world.host("fs1"), replicas, files::FileServer::kDefaultPort, cfg);
  files::FileServer fs2(*world.host("fs2"), replicas, files::FileServer::kDefaultPort, cfg);
  files::FileServer fs3(*world.host("fs3"), replicas, files::FileServer::kDefaultPort, cfg);
  fs1.set_peers({fs2.address(), fs3.address()});
  fs2.set_peers({fs1.address(), fs3.address()});
  fs3.set_peers({fs1.address(), fs2.address()});

  transport::RpcEndpoint rpc(*world.host("app"), 9200);
  files::FileClient client(rpc, replicas);
  client.write(fs1.address(), "lifn://chaos/repair", chaos::chaos_payload(20'000, seed, 3),
               [](Result<void>) {});
  world.engine().run();
  ASSERT_TRUE(fs2.has("lifn://chaos/repair"));

  world.host("fs2")->set_up(false);
  world.engine().run_for(duration::seconds(60));
  // Repair re-created the lost copy on the spare peer.
  EXPECT_TRUE(fs3.has("lifn://chaos/repair"));
  EXPECT_GE(fs1.stats().repairs, 1u);

  // Converged: replica count is back at target, so the daemons go quiet.
  std::uint64_t repairs_at_convergence = fs1.stats().repairs + fs3.stats().repairs;
  std::uint64_t received_at_convergence =
      fs1.stats().replicas_received + fs3.stats().replicas_received;
  world.engine().run_for(duration::seconds(120));
  EXPECT_EQ(fs1.stats().repairs + fs3.stats().repairs, repairs_at_convergence);
  EXPECT_EQ(fs1.stats().replicas_received + fs3.stats().replicas_received,
            received_at_convergence);
}

TEST(ChaosObs, ExpiredAndSkippedCountsMatchMetricsRegistry) {
  double expired0 = chaos::metric_value("srudp.messages_expired");
  double skipped0 = chaos::metric_value("srudp.messages_skipped");

  World world(chaos::chaos_seed() + 600);
  world.create_network("lan", simnet::ethernet100());
  world.attach(world.create_host("a"), *world.network("lan"));
  world.attach(world.create_host("b"), *world.network("lan"));
  transport::SrudpConfig cfg;
  cfg.msg_ttl = duration::milliseconds(300);
  cfg.hol_skip = duration::milliseconds(200);
  transport::SrudpEndpoint sender(*world.host("a"), 7000, cfg);
  transport::SrudpEndpoint receiver(*world.host("b"), 7000, cfg);
  std::vector<std::size_t> got;
  receiver.set_handler([&got](const Address&, Payload m) { got.push_back(m.size()); });

  // Message 1 dies against a crashed receiver; message 2, sent after the
  // reboot, is delivered only once the receiver skips the HOL gap.
  world.host("b")->set_up(false);
  sender.send({"b", 7000}, Bytes(100, 0x11));
  world.engine().run_for(duration::seconds(1));
  world.host("b")->set_up(true);
  sender.send({"b", 7000}, Bytes(200, 0x22));
  world.engine().run_for(duration::seconds(2));

  EXPECT_EQ(got, (std::vector<std::size_t>{200}));
  EXPECT_EQ(sender.stats().messages_expired.v, 1u);
  EXPECT_EQ(receiver.stats().messages_skipped.v, 1u);
  // The registry's fleet-wide counters moved by exactly the same amounts.
  EXPECT_EQ(chaos::metric_value("srudp.messages_expired") - expired0, 1.0);
  EXPECT_EQ(chaos::metric_value("srudp.messages_skipped") - skipped0, 1.0);
}

// ---- causal flow tracing: replay contract + linked cross-host flows --------
//
// The trace context is always minted and carried on the wire; only the
// *recording* of flow events is switched at runtime.  So a flow-on run and
// a flow-off run of the same seed must be byte-identical in every respect
// except the flow events themselves: same deliveries, same retransmit
// counts, same virtual timestamps on every non-flow trace event.

TEST(ChaosTrace, FlowTracingPreservesReplayDigestsAndLinksRetransmits) {
  auto& tracer = obs::Tracer::global();
  // Room for the per-fragment flow events so they cannot evict non-flow
  // events from the ring and perturb the filtered digest.
  tracer.set_capacity(1 << 20);
  std::uint64_t seed = chaos::chaos_seed() + 700;

  auto base = run_srudp_gauntlet(seed);
  ASSERT_TRUE(base.intact) << base.why;

  tracer.set_flow_enabled(true);
  auto traced = run_srudp_gauntlet(seed);
  tracer.set_flow_enabled(false);
  ASSERT_TRUE(traced.intact) << traced.why;

  // (a) bit-identical seeded delivery + trace digests with tracing enabled.
  EXPECT_EQ(base.digest, traced.digest);
  EXPECT_EQ(base.delivered, traced.delivered);

  // (b) at least one retransmitted message forms a linked cross-host flow:
  // flow_start srudp.send -> flow_step srudp.retransmit -> flow_end
  // srudp.deliver, all bound by one id.  The gauntlet's fault profile
  // guarantees retransmissions.
  auto events = tracer.events();
  std::set<std::uint64_t> retransmitted, started, delivered;
  for (const auto& e : events) {
    if (e.id == 0) continue;
    if (e.name == "srudp.retransmit") retransmitted.insert(e.id);
    if (e.phase == obs::TraceEvent::Phase::flow_start && e.name == "srudp.send")
      started.insert(e.id);
    if (e.phase == obs::TraceEvent::Phase::flow_end && e.name == "srudp.deliver")
      delivered.insert(e.id);
  }
  ASSERT_FALSE(retransmitted.empty()) << "fault profile produced no retransmits";
  bool linked = false;
  for (std::uint64_t id : retransmitted)
    if (started.count(id) && delivered.count(id)) {
      linked = true;
      break;
    }
  EXPECT_TRUE(linked) << "no retransmitted flow is linked send->retransmit->deliver";

  // The Chrome export carries the flow phases and hex ids viewers bind on.
  const std::string path = "chaos_flow_trace.json";
  ASSERT_TRUE(tracer.write_chrome_json(path));
  std::ifstream in(path);
  std::string json((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0x"), std::string::npos);

  tracer.set_capacity(16384);  // restore the suite default
}

// ---- flight recorder: a dump after a faulted run shows what chaos did ------

TEST(ChaosFlight, DumpAfterFaultedRunContainsInjectedFaults) {
  auto& flight = obs::FlightRecorder::global();
  flight.clear();
  auto r = run_srudp_gauntlet(chaos::chaos_seed() + 800);
  ASSERT_TRUE(r.intact) << r.why;

  // This is the dump a tripped invariant (see FlightDumpOnFailure below)
  // or the SIGABRT handler would emit: the fault plan's actions must be in
  // it, alongside the transport reactions they provoked.
  std::string dump = flight.dump();
  EXPECT_NE(dump.find("fault/partition.start"), std::string::npos) << dump;
  EXPECT_NE(dump.find("fault/host.crash"), std::string::npos);
  EXPECT_NE(dump.find("fault/host.restart"), std::string::npos);
  EXPECT_NE(dump.find("srudp/rto"), std::string::npos);

  // Host filtering: the sender's RTOs are attributed to host "a".
  std::string a_only = flight.dump("a");
  EXPECT_NE(a_only.find("srudp/rto"), std::string::npos);
  // Network-level fault events carry no host and match every filter.
  EXPECT_NE(a_only.find("fault/partition.start"), std::string::npos);
}

// ---- fleet telemetry: the exporter must not perturb the replay digest ------
//
// The telemetry plane's determinism contract (src/daemon/telemetry.hpp):
// beacons ride loss-free management links (no RNG draws — Rng::chance(0)
// consumes nothing), emit trace events only in the "telemetry" category,
// and never shift any other component's timestamps.  So a chaos run with
// exporters+collector attached must produce the *bit-identical* digest of
// a run without them, once "telemetry" (and "flow", as ever) is excluded.
// The data hosts share only the lossy lan — each reaches the collector
// over its own private management link, so beacons cannot even contend
// with data traffic for egress bandwidth after a route failover.

std::string run_fleet_gauntlet(std::uint64_t seed, bool exporter_on) {
  obs::Tracer::global().clear();
  World world(seed);
  world.create_network("lan", simnet::ethernet100());
  world.create_network("mgmt_a", simnet::ethernet100());
  world.create_network("mgmt_b", simnet::ethernet100());
  world.attach(world.create_host("a"), *world.network("lan"));
  world.attach(world.create_host("b"), *world.network("lan"));
  world.attach(world.create_host("coll"), *world.network("mgmt_a"));
  world.attach(*world.host("coll"), *world.network("mgmt_b"));
  world.attach(*world.host("a"), *world.network("mgmt_a"));
  world.attach(*world.host("b"), *world.network("mgmt_b"));

  transport::SrudpEndpoint sender(*world.host("a"), 7000);
  transport::SrudpEndpoint receiver(*world.host("b"), 7000);
  std::uint64_t delivered = 0;
  receiver.set_handler([&delivered](const Address&, Payload) { ++delivered; });

  FaultPlan plan(world, seed * 0x9E3779B97F4A7C15ULL + 5);
  FaultProfile profile;
  profile.burst = {0.02, 0.25, 0.02, 0.5};
  profile.duplicate = 0.03;
  profile.reorder = 0.05;
  plan.inject("lan", profile);

  std::unique_ptr<transport::RpcEndpoint> coll_rpc;
  std::unique_ptr<daemon::TelemetryCollector> collector;
  std::vector<std::unique_ptr<transport::RpcEndpoint>> exporter_rpcs;
  std::vector<std::unique_ptr<daemon::TelemetryExporter>> exporters;
  if (exporter_on) {
    coll_rpc = std::make_unique<transport::RpcEndpoint>(*world.host("coll"), 7300);
    collector = std::make_unique<daemon::TelemetryCollector>(*coll_rpc);
    for (const char* h : {"a", "b"}) {
      auto rpc = std::make_unique<transport::RpcEndpoint>(*world.host(h), 7400);
      daemon::TelemetryConfig cfg;
      cfg.collectors = {coll_rpc->address()};
      cfg.period = duration::milliseconds(500);
      auto exporter = std::make_unique<daemon::TelemetryExporter>(*rpc, cfg);
      exporter->start();
      exporter_rpcs.push_back(std::move(rpc));
      exporters.push_back(std::move(exporter));
    }
  }

  const Address dst{"b", 7000};
  for (std::uint32_t i = 0; i < 25; ++i) {
    Bytes payload = chaos::chaos_payload(600 + 37 * i, seed, i);
    world.engine().schedule_at(
        duration::milliseconds(40) * i,
        [&sender, dst, payload = std::move(payload)]() mutable {
          sender.send(dst, std::move(payload));
        });
  }
  world.engine().run_until(duration::seconds(20));

  if (exporter_on) {
    // The plane must actually have run for the comparison to mean anything.
    EXPECT_EQ(collector->store().host_count(), 2u) << "seed " << seed;
    EXPECT_GT(collector->beacons_received(), 0u) << "seed " << seed;
  }
  return chaos::trace_digest(std::vector<std::string>{"flow", "telemetry"}) +
         "|delivered=" + std::to_string(delivered);
}

TEST(ChaosTrace, TelemetryExporterPreservesReplayDigests) {
  for (int i = 0; i < 3; ++i) {
    std::uint64_t seed = chaos::chaos_seed() + 900 + static_cast<std::uint64_t>(i);
    std::string off = run_fleet_gauntlet(seed, false);
    std::string on = run_fleet_gauntlet(seed, true);
    EXPECT_EQ(off, on) << "seed " << seed << ": exporter perturbed the run";
    chaos::log_digest("fleet_gauntlet", seed, on);
  }
}

/// When any chaos invariant trips, print the flight recorder so the CI log
/// shows the fault and protocol events leading up to the failure.
class FlightDumpOnFailure : public ::testing::EmptyTestEventListener {
  void OnTestPartResult(const ::testing::TestPartResult& result) override {
    if (!result.failed()) return;
    std::fprintf(stderr, "\n=== flight recorder at failure ===\n%s\n",
                 obs::FlightRecorder::global().dump().c_str());
  }
};

// ---- Sharded engine: shard-count invariance of seeded faulted runs ---------
//
// The conservative windowed driver promises that a seeded chaos run is a
// function of (seed) alone, not of the shard count: hosts fork their RNGs
// from the first engine in creation order, fault lanes derive per source
// host, and cross-shard mailboxes drain in (arrival, source shard, seq)
// order.  Four sites (worker + gateway each) on per-site LANs, gateways
// ringed over a WAN — the WAN is the only network that crosses shards, so
// its 18 ms latency is the lookahead.  SRUDP flows run within each site and
// around the gateway ring while burst loss, duplication, reordering, a WAN
// partition and a gateway crash all fire.  The canonical trace digest and
// the delivery ledgers must come out bit-identical for 1, 2 and 4 shards.

struct ShardedResult {
  bool intact = false;
  std::string why;
  std::uint64_t delivered = 0;
  std::uint64_t drops_fault = 0;
  std::uint64_t cross_shard = 0;
  std::uint64_t windows = 0;
  std::string digest;
};

ShardedResult run_sharded_sites(std::uint64_t seed, std::size_t shards) {
  constexpr std::size_t kSites = 4;
  obs::Tracer::global().clear();
  // The ring must hold the whole run: once it wraps, *which* events survive
  // depends on record order, which is thread-interleaving-dependent.
  obs::Tracer::global().set_capacity(1 << 20);

  ShardedResult r;
  {
    World world(seed, shards);
    for (std::size_t i = 0; i < kSites; ++i)
      world.create_network("lan" + std::to_string(i), simnet::ethernet100());
    world.create_network("wan", simnet::wan_t3());
    // Same creation order for every shard count — host RNG forks depend on
    // it — only the placement (site -> shard) varies.
    std::vector<simnet::Host*> workers, gateways;
    for (std::size_t i = 0; i < kSites; ++i) {
      std::size_t shard = i % shards;
      simnet::Host& w = world.create_host("w" + std::to_string(i), shard);
      simnet::Host& g = world.create_host("g" + std::to_string(i), shard);
      world.attach(w, *world.network("lan" + std::to_string(i)));
      world.attach(g, *world.network("lan" + std::to_string(i)));
      world.attach(g, *world.network("wan"));
      workers.push_back(&w);
      gateways.push_back(&g);
    }

    // SRUDP flows: w_i -> g_i within each site, g_i -> g_(i+1) around the
    // WAN ring.
    std::vector<std::unique_ptr<transport::SrudpEndpoint>> eps;
    // One ledger shared by all sites: gateways on different shards deliver
    // from different worker threads, so handler access takes a lock (the
    // per-sender vectors keep their per-flow order either way).
    chaos::DeliveryLedger ledger;
    std::mutex ledger_mu;
    for (std::size_t i = 0; i < kSites; ++i) {
      eps.push_back(std::make_unique<transport::SrudpEndpoint>(*workers[i], 7000));
      eps.push_back(std::make_unique<transport::SrudpEndpoint>(*gateways[i], 7000));
      transport::SrudpEndpoint& gw = *eps.back();
      gw.set_handler([&ledger, &ledger_mu](const Address& src, Payload m) {
        std::lock_guard<std::mutex> lock(ledger_mu);
        ledger.on_deliver(src.host, std::move(m));
      });
    }

    FaultPlan plan(world, seed * 0x9E3779B97F4A7C15ULL + 1);
    FaultProfile profile;
    profile.burst = {/*p_enter_bad=*/0.01, /*p_exit_bad=*/0.25,
                     /*loss_good=*/0.005, /*loss_bad=*/0.5};
    profile.duplicate = 0.03;
    profile.reorder = 0.05;
    profile.reorder_jitter = duration::milliseconds(2);
    plan.inject("wan", profile);
    plan.inject("lan1", profile);
    plan.partition("wan", {{"g0", "g1"}, {"g2", "g3"}}, duration::milliseconds(301),
                   duration::milliseconds(603));
    plan.crash_host("g3", duration::milliseconds(701), duration::milliseconds(903));

    // Workload on the hosts' own engines, staggered with coprime periods so
    // no two cross-shard flows collide on one destination at one instant.
    const std::uint32_t kMsgs = 10;
    for (std::size_t i = 0; i < kSites; ++i) {
      transport::SrudpEndpoint& wtx = *eps[2 * i];
      transport::SrudpEndpoint& gtx = *eps[2 * i + 1];
      const Address site_dst{"g" + std::to_string(i), 7000};
      const Address ring_dst{"g" + std::to_string((i + 1) % kSites), 7000};
      for (std::uint32_t j = 0; j < kMsgs; ++j) {
        std::uint32_t idx = static_cast<std::uint32_t>(i) * 100 + j;
        Bytes intra = chaos::chaos_payload(
            1 + (idx * 37u) % 3000, seed, idx);
        ledger.expect_sent("w" + std::to_string(i), intra);
        workers[i]->engine().schedule_at(
            duration::milliseconds(5 + 17 * static_cast<SimTime>(i)) +
                duration::milliseconds(23 + 2 * static_cast<SimTime>(i)) * j,
            [&wtx, site_dst, intra = std::move(intra)]() mutable {
              wtx.send(site_dst, std::move(intra));
            });
        Bytes ring = chaos::chaos_payload(
            1 + (idx * 53u) % 3000, seed, 10000 + idx);
        ledger.expect_sent("g" + std::to_string(i), ring);
        gateways[i]->engine().schedule_at(
            duration::milliseconds(11 + 13 * static_cast<SimTime>(i)) +
                duration::milliseconds(29 + 2 * static_cast<SimTime>(i)) * j,
            [&gtx, ring_dst, ring = std::move(ring)]() mutable {
              gtx.send(ring_dst, std::move(ring));
            });
      }
    }

    world.run_until(duration::seconds(25));

    r.intact = ledger.intact(&r.why);
    for (std::size_t i = 0; i < kSites; ++i)
      r.delivered += eps[2 * i + 1]->stats().messages_delivered.v;
    r.drops_fault = world.network("wan")->stats().drops_fault +
                    world.network("lan1")->stats().drops_fault;
    r.cross_shard = world.run_stats().cross_shard_packets;
    r.windows = world.run_stats().windows;
    EXPECT_EQ(obs::Tracer::global().dropped(), 0u) << "trace ring wrapped";
    r.digest = chaos::trace_digest_canonical("flow") +
               "|delivered=" + std::to_string(r.delivered) +
               "|dropsF=" + std::to_string(r.drops_fault);
  }
  obs::Tracer::global().set_capacity(16384);
  return r;
}

TEST(ChaosSharded, SeededFaultedRunDigestInvariantAcrossShardCounts) {
  for (int i = 0; i < 2; ++i) {
    std::uint64_t seed = chaos::chaos_seed() + 40 + static_cast<std::uint64_t>(i);
    ShardedResult one = run_sharded_sites(seed, 1);
    EXPECT_TRUE(one.intact) << "seed " << seed << ": " << one.why;
    EXPECT_EQ(one.delivered, 80u) << "seed " << seed;
    EXPECT_GT(one.drops_fault, 0u) << "seed " << seed << ": fault layer never bit";
    EXPECT_EQ(one.cross_shard, 0u);

    ShardedResult two = run_sharded_sites(seed, 2);
    EXPECT_TRUE(two.intact) << "seed " << seed << " shards=2: " << two.why;
    EXPECT_GT(two.cross_shard, 0u) << "no traffic crossed shards; test is vacuous";
    EXPECT_GT(two.windows, 0u);
    EXPECT_EQ(one.digest, two.digest) << "seed " << seed << ": shards=2 diverged";

    ShardedResult four = run_sharded_sites(seed, 4);
    EXPECT_TRUE(four.intact) << "seed " << seed << " shards=4: " << four.why;
    EXPECT_GT(four.cross_shard, 0u);
    EXPECT_EQ(one.digest, four.digest) << "seed " << seed << ": shards=4 diverged";

    // And the sharded run must replay bit-identically against itself.
    ShardedResult again = run_sharded_sites(seed, 2);
    EXPECT_EQ(two.digest, again.digest) << "seed " << seed << ": shards=2 did not replay";
    chaos::log_digest("sharded_sites", seed, one.digest);
  }
}

// --------------------------------------------------------------------------
// Zoned-topology chaos: the ChaosSharded contract extended to multi-hop
// routing.  Four LAN zones (2 hosts each) ringed by WAN gateway links
// between the zones' gateway routers; hosts are placed shard-by-zone (the
// zone default), so with shards > 1 every WAN link crosses shards and the
// lookahead is the WAN latency.  Cross-zone SRUDP flows traverse 3-hop
// routes (lan -> wan -> lan) through routers; a gateway link_down forces a
// live reroute the long way around the ring (§6 route switching), a
// partition on another WAN link drops one flow end-to-end until it heals,
// and a receiving host crashes and reboots.  Digest must be a function of
// the seed alone — identical for 1, 2 and 4 shards.

ShardedResult run_zoned_sites(std::uint64_t seed, std::size_t shards) {
  constexpr std::size_t kSites = 4;
  obs::Tracer::global().clear();
  obs::Tracer::global().set_capacity(1 << 20);

  ShardedResult r;
  {
    World world(seed, shards);
    // Same creation order for every shard count: zones round-robin over
    // however many shards exist, and every host/router RNG forks from the
    // first engine in creation order either way.
    std::vector<simnet::Zone*> sites;
    for (std::size_t i = 0; i < kSites; ++i)
      sites.push_back(&simnet::build_lan(world, "site" + std::to_string(i), 2,
                                         simnet::ethernet100()));
    for (std::size_t i = 0; i < kSites; ++i)
      simnet::connect_zones(*sites[i], *sites[(i + 1) % kSites], simnet::wan_t3(),
                            "wan" + std::to_string(i));

    auto host_name = [](std::size_t site, int h) {
      return "site" + std::to_string(site) + "/h" + std::to_string(h);
    };
    std::vector<simnet::Host*> senders, receivers;
    for (std::size_t i = 0; i < kSites; ++i) {
      senders.push_back(world.host(host_name(i, 0)));
      receivers.push_back(world.host(host_name(i, 1)));
    }

    std::vector<std::unique_ptr<transport::SrudpEndpoint>> eps;
    chaos::DeliveryLedger ledger;
    std::mutex ledger_mu;
    for (std::size_t i = 0; i < kSites; ++i) {
      eps.push_back(std::make_unique<transport::SrudpEndpoint>(*senders[i], 7000));
      eps.push_back(std::make_unique<transport::SrudpEndpoint>(*receivers[i], 7000));
      transport::SrudpEndpoint& rx = *eps.back();
      rx.set_handler([&ledger, &ledger_mu](const Address& src, Payload m) {
        std::lock_guard<std::mutex> lock(ledger_mu);
        ledger.on_deliver(src.host, std::move(m));
      });
    }

    FaultPlan plan(world, seed * 0x9E3779B97F4A7C15ULL + 2);
    FaultProfile profile;
    profile.burst = {/*p_enter_bad=*/0.01, /*p_exit_bad=*/0.25,
                     /*loss_good=*/0.005, /*loss_bad=*/0.5};
    profile.duplicate = 0.03;
    profile.reorder = 0.05;
    profile.reorder_jitter = duration::milliseconds(2);
    for (std::size_t i = 0; i < kSites; ++i)
      plan.inject("wan" + std::to_string(i), profile);
    // wan0 dies mid-run: the site0 -> site1 flow must re-resolve the long
    // way around the ring (3 WAN hops) and keep delivering, then snap back.
    // The window overlaps the send schedule so reroutes happen live.
    plan.link_down("wan0", duration::milliseconds(131), duration::milliseconds(397));
    // The site2 -> site3 flow is partitioned end-to-end on its WAN link for
    // a window; interior-hop judging must still honor the (src, dst) pair —
    // and the rerouted site0 flow transits wan2 unharmed meanwhile (its
    // endpoints sit in the injector's implicit extra group).
    plan.partition("wan2", {{host_name(2, 1)}, {host_name(3, 1)}},
                   duration::milliseconds(301), duration::milliseconds(603));
    // The partitioned flow's receiver also crashes across the heal, so the
    // backlog only lands after a reboot.
    plan.crash_host(host_name(3, 1), duration::milliseconds(471),
                    duration::milliseconds(703));

    // Workload: intra-site h0 -> h1 (adjacent, the flat fast path) and ring
    // h1 -> next site's h1 (3-hop routed path through both gateways),
    // staggered with coprime periods so no two cross-shard flows collide on
    // one destination at one instant.  Each host owns exactly one flow:
    // the ledger checks total per-sender order across all receivers.
    const std::uint32_t kMsgs = 10;
    for (std::size_t i = 0; i < kSites; ++i) {
      transport::SrudpEndpoint& htx = *eps[2 * i];
      transport::SrudpEndpoint& rtx = *eps[2 * i + 1];
      const Address near_dst{host_name(i, 1), 7000};
      const Address ring_dst{host_name((i + 1) % kSites, 1), 7000};
      for (std::uint32_t j = 0; j < kMsgs; ++j) {
        std::uint32_t idx = static_cast<std::uint32_t>(i) * 100 + j;
        Bytes intra = chaos::chaos_payload(1 + (idx * 37u) % 3000, seed, idx);
        ledger.expect_sent(host_name(i, 0), intra);
        senders[i]->engine().schedule_at(
            duration::milliseconds(5 + 17 * static_cast<SimTime>(i)) +
                duration::milliseconds(23 + 2 * static_cast<SimTime>(i)) * j,
            [&htx, near_dst, intra = std::move(intra)]() mutable {
              htx.send(near_dst, std::move(intra));
            });
        Bytes ring = chaos::chaos_payload(1 + (idx * 53u) % 3000, seed, 10000 + idx);
        ledger.expect_sent(host_name(i, 1), ring);
        receivers[i]->engine().schedule_at(
            duration::milliseconds(11 + 13 * static_cast<SimTime>(i)) +
                duration::milliseconds(29 + 2 * static_cast<SimTime>(i)) * j,
            [&rtx, ring_dst, ring = std::move(ring)]() mutable {
              rtx.send(ring_dst, std::move(ring));
            });
      }
    }

    world.run_until(duration::seconds(25));

    r.intact = ledger.intact(&r.why);
    for (std::size_t i = 0; i < kSites; ++i)
      r.delivered += eps[2 * i + 1]->stats().messages_delivered.v;
    for (std::size_t i = 0; i < kSites; ++i)
      r.drops_fault += world.network("wan" + std::to_string(i))->stats().drops_fault;
    r.cross_shard = world.run_stats().cross_shard_packets;
    r.windows = world.run_stats().windows;
    EXPECT_EQ(obs::Tracer::global().dropped(), 0u) << "trace ring wrapped";
    r.digest = chaos::trace_digest_canonical("flow") +
               "|delivered=" + std::to_string(r.delivered) +
               "|dropsF=" + std::to_string(r.drops_fault);
  }
  obs::Tracer::global().set_capacity(16384);
  return r;
}

TEST(ChaosTopo, ZonedFaultedRunDigestInvariantAcrossShardCounts) {
  std::uint64_t seed = chaos::chaos_seed() + 60;
  ShardedResult one = run_zoned_sites(seed, 1);
  EXPECT_TRUE(one.intact) << "seed " << seed << ": " << one.why;
  EXPECT_EQ(one.delivered, 80u) << "seed " << seed;
  EXPECT_GT(one.drops_fault, 0u) << "seed " << seed << ": fault layer never bit";
  EXPECT_EQ(one.cross_shard, 0u);

  ShardedResult two = run_zoned_sites(seed, 2);
  EXPECT_TRUE(two.intact) << "seed " << seed << " shards=2: " << two.why;
  EXPECT_GT(two.cross_shard, 0u) << "no traffic crossed shards; test is vacuous";
  EXPECT_GT(two.windows, 0u);
  EXPECT_EQ(one.digest, two.digest) << "seed " << seed << ": shards=2 diverged";

  ShardedResult four = run_zoned_sites(seed, 4);
  EXPECT_TRUE(four.intact) << "seed " << seed << " shards=4: " << four.why;
  EXPECT_GT(four.cross_shard, 0u);
  EXPECT_EQ(one.digest, four.digest) << "seed " << seed << ": shards=4 diverged";

  ShardedResult again = run_zoned_sites(seed, 2);
  EXPECT_EQ(two.digest, again.digest) << "seed " << seed << ": shards=2 did not replay";
  chaos::log_digest("topo_sites", seed, one.digest);
}

const bool kFlightListenerInstalled = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(new FlightDumpOnFailure);
  return true;
}();

}  // namespace
}  // namespace snipe
