// Integration tests for the per-host daemon and resource managers: spawn
// paths (native, mobile code, restore-from-checkpoint), environment and
// authorization enforcement, signals, state notification, load reporting,
// RM allocation, redundancy, and the §4 two-certificate authorization flow.
#include <gtest/gtest.h>

#include "daemon/daemon.hpp"
#include "playground/svmasm.hpp"
#include "rcds/server.hpp"
#include "rm/resource_manager.hpp"

namespace snipe::daemon {
namespace {

using simnet::Address;
using simnet::World;

/// A trivial native program: runs for `args[0]` of virtual time then exits
/// with code args[1] (defaults: exit immediately with 0).
class SleeperTask final : public ManagedTask {
 public:
  SleeperTask(simnet::Engine& engine, const SpawnRequest& req, TaskHandle& handle)
      : engine_(engine), handle_(handle) {
    delay_ = req.args.size() > 0 ? req.args[0] : 0;
    code_ = req.args.size() > 1 ? req.args[1] : 0;
  }
  void start() override {
    timer_ = engine_.schedule(delay_, [this] { handle_.exited(code_); });
  }
  void kill() override { engine_.cancel(timer_); }

 private:
  simnet::Engine& engine_;
  TaskHandle& handle_;
  SimDuration delay_ = 0;
  std::int64_t code_ = 0;
  simnet::TimerId timer_;
};

TaskFactory sleeper_factory(simnet::Engine& engine) {
  return [&engine](const SpawnRequest& req,
                   TaskHandle& handle) -> Result<std::unique_ptr<ManagedTask>> {
    return std::unique_ptr<ManagedTask>(new SleeperTask(engine, req, handle));
  };
}

struct DaemonFixture : ::testing::Test {
  DaemonFixture() : world(81), rng(82) {
    world.create_network("lan", simnet::ethernet100());
    for (const char* n : {"rc", "fs", "nodeA", "nodeB", "client"})
      world.attach(world.create_host(n), *world.network("lan"));
    rc = std::make_unique<rcds::RcServer>(*world.host("rc"));
    fs = std::make_unique<files::FileServer>(*world.host("fs"), replicas());
    client_rpc = std::make_unique<transport::RpcEndpoint>(*world.host("client"), 9400);
  }

  std::vector<Address> replicas() { return {rc->address()}; }

  std::unique_ptr<SnipeDaemon> make_daemon(const std::string& host, DaemonConfig cfg = {}) {
    cfg.playground.require_signature = false;  // signing covered elsewhere
    auto d = std::make_unique<SnipeDaemon>(*world.host(host), replicas(),
                                           SnipeDaemon::kDefaultPort, cfg);
    d->register_program("sleeper", sleeper_factory(world.engine()));
    return d;
  }

  /// Steps the engine until `pred` holds (or nothing is left to run).
  /// Unlike engine().run(), this does not fast-forward through the
  /// lifetimes of freshly spawned tasks.
  template <typename Pred>
  void pump_until(Pred pred) {
    while (!pred() && world.engine().step()) {
    }
  }

  Result<SpawnReply> spawn_via_rpc(const Address& daemon, const SpawnRequest& req) {
    Result<SpawnReply> reply(Errc::state_error, "unset");
    bool replied = false;
    client_rpc->call(daemon, tags::kSpawn, req.encode(), [&](Result<Bytes> r) {
      replied = true;
      if (!r)
        reply = r.error();
      else
        reply = SpawnReply::decode(r.value());
    });
    pump_until([&] { return replied; });
    return reply;
  }

  /// RPC call helper that pumps only until the response arrives.
  Result<Bytes> call_and_wait(const Address& dst, std::uint32_t tag, Bytes body) {
    Result<Bytes> result(Errc::state_error, "unset");
    bool replied = false;
    client_rpc->call(dst, tag, std::move(body), [&](Result<Bytes> r) {
      replied = true;
      result = r;
    });
    pump_until([&] { return replied; });
    return result;
  }

  World world;
  Rng rng;
  std::unique_ptr<rcds::RcServer> rc;
  std::unique_ptr<files::FileServer> fs;
  std::unique_ptr<transport::RpcEndpoint> client_rpc;
};

TEST_F(DaemonFixture, PublishesHostMetadataOnStartup) {
  auto daemon = make_daemon("nodeA");
  world.engine().run();
  auto record = rc->get(daemon->host_url());
  ASSERT_FALSE(record.empty());
  bool has_daemon_url = false, has_arch = false, has_interface = false;
  for (const auto& a : record) {
    if (a.name == rcds::names::kHostDaemon && a.value == daemon->host_url())
      has_daemon_url = true;
    if (a.name == rcds::names::kHostArch) has_arch = true;
    if (a.name == rcds::names::kHostInterface) has_interface = true;
  }
  EXPECT_TRUE(has_daemon_url);
  EXPECT_TRUE(has_arch);
  EXPECT_TRUE(has_interface);
}

TEST_F(DaemonFixture, SpawnRunExitLifecycle) {
  auto daemon = make_daemon("nodeA");
  SpawnRequest req;
  req.program = "sleeper";
  req.name = "job1";
  req.args = {duration::seconds(1), 7};
  auto reply = spawn_via_rpc(daemon->address(), req);
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  EXPECT_EQ(reply.value().urn, "urn:snipe:proc:job1");
  EXPECT_EQ(reply.value().host, "nodeA");
  EXPECT_EQ(daemon->task_state("urn:snipe:proc:job1").value(), TaskState::running);
  EXPECT_EQ(daemon->running_tasks(), 1u);

  world.engine().run_for(duration::seconds(2));
  EXPECT_EQ(daemon->task_state("urn:snipe:proc:job1").value(), TaskState::exited);
  // Process metadata reflects the final state (§5.2.3).
  auto record = rc->get("urn:snipe:proc:job1");
  bool exited_in_rc = false;
  for (const auto& a : record)
    if (a.name == rcds::names::kProcState && a.value == "exited") exited_in_rc = true;
  EXPECT_TRUE(exited_in_rc);
}

TEST_F(DaemonFixture, SpawnerIsNotifiedOfStateChanges) {
  auto daemon = make_daemon("nodeA");
  std::vector<std::pair<std::string, TaskState>> events;
  client_rpc->on_notify(tags::kTaskEvent, [&](const Address&, const Bytes& body) {
    ByteReader r(body);
    auto urn = r.str().value();
    auto state = static_cast<TaskState>(r.u8().value());
    events.emplace_back(urn, state);
  });
  SpawnRequest req;
  req.program = "sleeper";
  req.args = {duration::milliseconds(100), 0};
  spawn_via_rpc(daemon->address(), req).value();
  world.engine().run();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.front().second, TaskState::running);
  EXPECT_EQ(events.back().second, TaskState::exited);
}

TEST_F(DaemonFixture, UnknownProgramRejected) {
  auto daemon = make_daemon("nodeA");
  SpawnRequest req;
  req.program = "no-such-thing";
  EXPECT_EQ(spawn_via_rpc(daemon->address(), req).code(), Errc::not_found);
  EXPECT_EQ(daemon->stats().spawns_rejected, 1u);
}

TEST_F(DaemonFixture, EnvironmentSpecEnforced) {
  DaemonConfig cfg;
  cfg.arch = "alpha-osf1";
  cfg.cpus = 2;
  auto daemon = make_daemon("nodeA", cfg);

  SpawnRequest wrong_arch;
  wrong_arch.program = "sleeper";
  wrong_arch.require_arch = "cray-t3e";
  EXPECT_EQ(spawn_via_rpc(daemon->address(), wrong_arch).code(), Errc::invalid_argument);

  SpawnRequest too_many_cpus;
  too_many_cpus.program = "sleeper";
  too_many_cpus.require_cpus = 8;
  EXPECT_EQ(spawn_via_rpc(daemon->address(), too_many_cpus).code(), Errc::invalid_argument);

  SpawnRequest fits;
  fits.program = "sleeper";
  fits.require_arch = "alpha-osf1";
  fits.require_cpus = 2;
  EXPECT_TRUE(spawn_via_rpc(daemon->address(), fits).ok());
}

TEST_F(DaemonFixture, AuthorizationRequiredAndVerified) {
  auto rm_principal = crypto::Principal::create("urn:snipe:rm:grm1", rng);
  DaemonConfig cfg;
  cfg.require_authorization = true;
  cfg.trust.trust(rm_principal.uri, rm_principal.keys.pub,
                  crypto::TrustPurpose::grant_resources);
  auto daemon = make_daemon("nodeA", cfg);

  SpawnRequest unsigned_req;
  unsigned_req.program = "sleeper";
  EXPECT_EQ(spawn_via_rpc(daemon->address(), unsigned_req).code(), Errc::permission_denied);

  // Authorization for the wrong host is rejected.
  SpawnRequest wrong_host = unsigned_req;
  wrong_host.authorization =
      crypto::SignedStatement::make(rm_principal, authorization_payload("sleeper", "nodeB"))
          .encode();
  EXPECT_EQ(spawn_via_rpc(daemon->address(), wrong_host).code(), Errc::permission_denied);

  // Authorization from an untrusted signer is rejected.
  auto rogue = crypto::Principal::create("urn:snipe:rm:rogue", rng);
  SpawnRequest rogue_req = unsigned_req;
  rogue_req.authorization =
      crypto::SignedStatement::make(rogue, authorization_payload("sleeper", "nodeA")).encode();
  EXPECT_EQ(spawn_via_rpc(daemon->address(), rogue_req).code(), Errc::permission_denied);

  // The genuine article works.
  SpawnRequest good = unsigned_req;
  good.authorization =
      crypto::SignedStatement::make(rm_principal, authorization_payload("sleeper", "nodeA"))
          .encode();
  EXPECT_TRUE(spawn_via_rpc(daemon->address(), good).ok());
}

TEST_F(DaemonFixture, SpawnsMobileCodeFromLifn) {
  auto daemon = make_daemon("nodeA");
  // Publish unsigned code (daemon playground configured w/o signatures).
  auto program = playground::assemble(R"(
    recv
    push 10
    mul
    emit
    push 0
    halt
  )");
  files::FileClient publisher(*client_rpc, replicas());
  publisher.write(fs->address(), "lifn://utk.edu/code/mult", program.value().encode(),
                  [](Result<void>) {});
  world.engine().run();

  SpawnRequest req;
  req.program = "lifn://utk.edu/code/mult";
  req.name = "vmjob";
  req.args = {4};  // initial input
  auto reply = spawn_via_rpc(daemon->address(), req);
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  world.engine().run();
  EXPECT_EQ(daemon->task_state("urn:snipe:proc:vmjob").value(), TaskState::exited);
}

TEST_F(DaemonFixture, SignalsSuspendResumeKill) {
  auto daemon = make_daemon("nodeA");
  SpawnRequest req;
  req.program = "sleeper";
  req.name = "victim";
  req.args = {duration::seconds(100), 0};
  spawn_via_rpc(daemon->address(), req).value();

  auto send_signal = [&](TaskSignal sig) {
    ByteWriter w;
    w.str("urn:snipe:proc:victim");
    w.u8(static_cast<std::uint8_t>(sig));
    return call_and_wait(daemon->address(), tags::kSignal, std::move(w).take());
  };

  ASSERT_TRUE(send_signal(TaskSignal::suspend).ok());
  EXPECT_EQ(daemon->task_state("urn:snipe:proc:victim").value(), TaskState::suspended);
  ASSERT_TRUE(send_signal(TaskSignal::resume).ok());
  EXPECT_EQ(daemon->task_state("urn:snipe:proc:victim").value(), TaskState::running);
  ASSERT_TRUE(send_signal(TaskSignal::kill).ok());
  EXPECT_EQ(daemon->task_state("urn:snipe:proc:victim").value(), TaskState::killed);
}

TEST_F(DaemonFixture, CheckpointToFileServerAndRestoreElsewhere) {
  // The §5.6 migration primitive: checkpoint a running VM task on nodeA to
  // a file server, then spawn it on nodeB from the checkpoint.
  auto daemon_a = make_daemon("nodeA");
  auto daemon_b = make_daemon("nodeB");

  // A counter that emits its global counter forever; state = the counter.
  auto program = playground::assemble(R"(
    .globals 1
  loop:
    loadg 0
    push 1
    add
    storeg 0
    work 1000
    jmp loop
  )");
  files::FileClient publisher(*client_rpc, replicas());
  bool published = false;
  publisher.write(fs->address(), "lifn://utk.edu/code/counter", program.value().encode(),
                  [&](Result<void> r) { published = r.ok(); });
  pump_until([&] { return published; });
  ASSERT_TRUE(published);

  // NOTE: the counter loops forever, so the engine must never be fully
  // drained while it lives — everything below pumps bounded amounts.
  SpawnRequest req;
  req.program = "lifn://utk.edu/code/counter";
  req.name = "roamer";
  spawn_via_rpc(daemon_a->address(), req).value();
  world.engine().run_for(duration::milliseconds(50));  // let it count a bit

  // Checkpoint to the file server via the daemon RPC.
  ByteWriter w;
  w.str("urn:snipe:proc:roamer");
  w.str("lifn://utk.edu/ckpt/roamer/1");
  w.str(fs->address().host);
  w.u16(fs->address().port);
  Result<Bytes> ckpt = call_and_wait(daemon_a->address(), tags::kCheckpointTo,
                                     std::move(w).take());
  ASSERT_TRUE(ckpt.ok()) << ckpt.error().to_string();
  EXPECT_TRUE(fs->has("lifn://utk.edu/ckpt/roamer/1"));
  EXPECT_EQ(daemon_a->stats().checkpoints, 1u);

  // Kill the original and restore on nodeB.
  ByteWriter k;
  k.str("urn:snipe:proc:roamer");
  k.u8(static_cast<std::uint8_t>(TaskSignal::kill));
  call_and_wait(daemon_a->address(), tags::kSignal, std::move(k).take()).value();
  EXPECT_EQ(daemon_a->task_state("urn:snipe:proc:roamer").value(), TaskState::killed);

  SpawnRequest restore;
  restore.name = "roamer-2";
  restore.restore_lifn = "lifn://utk.edu/ckpt/roamer/1";
  auto reply = spawn_via_rpc(daemon_b->address(), restore);
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  world.engine().run_for(duration::milliseconds(10));
  EXPECT_EQ(daemon_b->task_state("urn:snipe:proc:roamer-2").value(), TaskState::running);
}

TEST_F(DaemonFixture, TaskInfoAndListRpcs) {
  auto daemon = make_daemon("nodeA");
  SpawnRequest req;
  req.program = "sleeper";
  req.name = "queried";
  req.args = {duration::seconds(60), 0};
  spawn_via_rpc(daemon->address(), req).value();

  // kTaskInfo: state + comm port + exit code.
  ByteWriter q;
  q.str("urn:snipe:proc:queried");
  auto info = call_and_wait(daemon->address(), tags::kTaskInfo, std::move(q).take());
  ASSERT_TRUE(info.ok());
  ByteReader r(info.value());
  EXPECT_EQ(static_cast<TaskState>(r.u8().value()), TaskState::running);

  // Unknown URN.
  ByteWriter q2;
  q2.str("urn:snipe:proc:ghost");
  EXPECT_EQ(call_and_wait(daemon->address(), tags::kTaskInfo, std::move(q2).take()).code(),
            Errc::not_found);

  // kListTasks enumerates the local task table (§3.3).
  auto list = call_and_wait(daemon->address(), tags::kListTasks, {});
  ASSERT_TRUE(list.ok());
  ByteReader lr(list.value());
  ASSERT_EQ(lr.u32().value(), 1u);
  EXPECT_EQ(lr.str().value(), "urn:snipe:proc:queried");
}

TEST_F(DaemonFixture, LoadQueryAndRcLoadReport) {
  auto daemon = make_daemon("nodeA");
  for (int i = 0; i < 3; ++i) {
    SpawnRequest req;
    req.program = "sleeper";
    req.args = {duration::seconds(60), 0};
    spawn_via_rpc(daemon->address(), req).value();
  }
  EXPECT_EQ(daemon->running_tasks(), 3u);
  Result<Bytes> load = call_and_wait(daemon->address(), tags::kLoad, {});
  ASSERT_TRUE(load.ok());
  ByteReader r(load.value());
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.0);

  world.engine().run_for(duration::seconds(5));
  auto record = rc->get(daemon->host_url());
  std::string rc_load;
  for (const auto& a : record)
    if (a.name == rcds::names::kHostLoad) rc_load = a.value;
  EXPECT_EQ(rc_load.substr(0, 1), "3");
}

// ---- Resource managers ----

struct RmFixture : DaemonFixture {
  RmFixture() {
    rm_principal = crypto::Principal::create("urn:snipe:rm:grm1", rng);
    DaemonConfig cfg;
    cfg.require_authorization = true;
    cfg.trust.trust(rm_principal.uri, rm_principal.keys.pub,
                    crypto::TrustPurpose::grant_resources);
    daemon_a = make_daemon("nodeA", cfg);
    daemon_b = make_daemon("nodeB", cfg);
    world.engine().run();

    auto& rm_host = world.create_host("rmhost");
    world.attach(rm_host, *world.network("lan"));
    rm = std::make_unique<rm::ResourceManager>(rm_host, replicas(), rm_principal);
    rm->manage_host("nodeA", daemon_a->address());
    rm->manage_host("nodeB", daemon_b->address());
    world.engine().run_for(duration::seconds(5));  // pull facts + first polls
  }

  crypto::Principal rm_principal{};
  std::unique_ptr<SnipeDaemon> daemon_a, daemon_b;
  std::unique_ptr<rm::ResourceManager> rm;
};

TEST_F(RmFixture, ActiveModeAllocatesAndProxiesSpawn) {
  SpawnRequest req;
  req.program = "sleeper";
  req.args = {duration::seconds(60), 0};
  auto raw = call_and_wait(rm->address(), rm::tags::kAllocate, req.encode());
  Result<SpawnReply> reply =
      raw.ok() ? SpawnReply::decode(raw.value()) : Result<SpawnReply>(raw.error());
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  // The daemon required an authorization; the RM attached one.
  EXPECT_EQ(daemon_a->running_tasks() + daemon_b->running_tasks(), 1u);
  EXPECT_EQ(rm->stats().allocations, 1u);
}

TEST_F(RmFixture, AllocationBalancesAcrossHosts) {
  for (int i = 0; i < 8; ++i) {
    SpawnRequest req;
    req.program = "sleeper";
    req.args = {duration::seconds(600), 0};
    call_and_wait(rm->address(), rm::tags::kAllocate, req.encode()).value();
  }
  // Least-loaded placement alternates between the two equal hosts.
  EXPECT_EQ(daemon_a->running_tasks(), 4u);
  EXPECT_EQ(daemon_b->running_tasks(), 4u);
}

TEST_F(RmFixture, DeadHostAvoidedAfterMissedPolls) {
  world.host("nodeA")->set_up(false);
  world.engine().run_for(duration::seconds(10));  // several poll periods
  EXPECT_EQ(rm->live_hosts(), 1u);
  for (int i = 0; i < 4; ++i) {
    SpawnRequest req;
    req.program = "sleeper";
    req.args = {duration::seconds(600), 0};
    call_and_wait(rm->address(), rm::tags::kAllocate, req.encode()).value();
  }
  EXPECT_EQ(daemon_b->running_tasks(), 4u);
}

TEST_F(RmFixture, PassiveModeReservationSpawnsViaClient) {
  SpawnRequest req;
  req.program = "sleeper";
  req.args = {duration::seconds(60), 0};
  auto raw = call_and_wait(rm->address(), rm::tags::kReserve, req.encode());
  Result<rm::Reservation> reservation =
      raw.ok() ? rm::Reservation::decode(raw.value()) : Result<rm::Reservation>(raw.error());
  ASSERT_TRUE(reservation.ok());
  // Client performs the spawn itself, presenting the RM's authorization.
  req.authorization = reservation.value().authorization;
  auto reply = spawn_via_rpc(reservation.value().daemon, req);
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  EXPECT_EQ(rm->stats().reservations, 1u);
}

TEST_F(RmFixture, RedundantRmsBothAllocate) {
  auto& rm2_host = world.create_host("rmhost2");
  world.attach(rm2_host, *world.network("lan"));
  auto rm2_principal = crypto::Principal::create("urn:snipe:rm:grm2", rng);
  // Daemons must trust the second RM too.
  // (In deployment both RM keys are in the daemons' trust stores; here we
  // reuse the first principal for rm2 to avoid daemon reconfiguration.)
  rm::ResourceManager rm2(rm2_host, replicas(), rm_principal);
  (void)rm2_principal;
  rm2.manage_host("nodeA", daemon_a->address());
  rm2.manage_host("nodeB", daemon_b->address());
  world.engine().run_for(duration::seconds(5));

  SpawnRequest req;
  req.program = "sleeper";
  req.args = {duration::seconds(60), 0};
  int ok = 0;
  for (auto* target : {rm.get(), &rm2})
    ok += call_and_wait(target->address(), rm::tags::kAllocate, req.encode()).ok();
  EXPECT_EQ(ok, 2);
}

TEST_F(RmFixture, SealedSpawnsOverAuthenticatedSession) {
  // §4: "the resource manager may instead maintain an authenticated
  // connection with each of its managed resources ... and transmit the
  // resource authorization without signatures."
  // The RmFixture daemons have no host keys; build a keyed daemon here.
  auto host_identity = std::make_shared<crypto::Principal>(
      crypto::Principal::create("snipe://nodeC:7201/daemon", rng));
  auto& node_c = world.create_host("nodeC");
  world.attach(node_c, *world.network("lan"));
  DaemonConfig cfg;
  cfg.require_authorization = true;
  cfg.host_principal = host_identity;
  cfg.trust.trust(rm_principal.uri, rm_principal.keys.pub,
                  crypto::TrustPurpose::grant_resources);
  auto daemon_c = make_daemon("nodeC", cfg);
  world.engine().run();
  rm->manage_host("nodeC", daemon_c->address());
  world.engine().run_for(duration::seconds(3));

  Result<void> established(Errc::state_error, "unset");
  rm->establish_session("nodeC", [&](Result<void> r) { established = r; });
  world.engine().run();
  ASSERT_TRUE(established.ok()) << established.error().to_string();
  ASSERT_TRUE(rm->has_session("nodeC"));
  EXPECT_EQ(daemon_c->active_sessions(), 1u);

  // Make nodeC the clear allocation choice by loading the other two hosts.
  for (int i = 0; i < 6; ++i) {
    SpawnRequest filler;
    filler.program = "sleeper";
    filler.args = {duration::seconds(600), 0};
    filler.authorization = crypto::SignedStatement::make(
                               rm_principal, authorization_payload("sleeper",
                                                                   i % 2 ? "nodeA" : "nodeB"))
                               .encode();
    spawn_via_rpc(i % 2 ? daemon_a->address() : daemon_b->address(), filler).value();
  }
  world.engine().run_for(duration::seconds(3));  // let polls see the load

  SpawnRequest req;
  req.program = "sleeper";
  req.args = {duration::seconds(60), 0};
  auto raw = call_and_wait(rm->address(), rm::tags::kAllocate, req.encode());
  ASSERT_TRUE(raw.ok()) << raw.error().to_string();
  auto reply = SpawnReply::decode(raw.value()).value();
  EXPECT_EQ(reply.host, "nodeC");
  EXPECT_GE(rm->stats().sealed_spawns, 1u);  // went unsigned over the session
  EXPECT_EQ(daemon_c->running_tasks(), 1u);
}

TEST_F(RmFixture, SealedSpawnWithoutSessionRejected) {
  // A sealed request from a peer without an established session (or a
  // replayed one) must be refused.
  auto host_identity = std::make_shared<crypto::Principal>(
      crypto::Principal::create("snipe://nodeD:7201/daemon", rng));
  auto& node_d = world.create_host("nodeD");
  world.attach(node_d, *world.network("lan"));
  DaemonConfig cfg;
  cfg.require_authorization = true;
  cfg.host_principal = host_identity;
  cfg.trust.trust(rm_principal.uri, rm_principal.keys.pub,
                  crypto::TrustPurpose::grant_resources);
  auto daemon_d = make_daemon("nodeD", cfg);
  world.engine().run();

  SpawnRequest req;
  req.program = "sleeper";
  auto r = call_and_wait(daemon_d->address(), tags::kSpawnSealed, req.encode());
  EXPECT_EQ(r.code(), Errc::permission_denied);

  // And a hello from an untrusted principal is refused too.
  auto rogue = crypto::Principal::create("urn:snipe:rm:rogue2", rng);
  auto initiated = crypto::Session::initiate(host_identity->keys.pub, rng).value();
  auto hello = crypto::SignedStatement::make(rogue, std::move(initiated.second));
  auto r2 = call_and_wait(daemon_d->address(), tags::kSessionHello, hello.encode());
  EXPECT_EQ(r2.code(), Errc::permission_denied);
  EXPECT_EQ(daemon_d->active_sessions(), 0u);
}

TEST_F(RmFixture, AuthorizeFlowEndToEnd) {
  // §4 two-certificate flow: CA certifies user + host; user signs a grant;
  // host signs an attestation; RM validates both and issues its own
  // authorization, which a daemon then accepts.
  auto ca = crypto::Principal::create("urn:snipe:ca:utk", rng);
  rm::RmConfig cfg;
  cfg.trust.trust(ca.uri, ca.keys.pub, crypto::TrustPurpose::identify_user);
  cfg.trust.trust(ca.uri, ca.keys.pub, crypto::TrustPurpose::identify_host);
  auto& rm3_host = world.create_host("rmhost3");
  world.attach(rm3_host, *world.network("lan"));
  rm::ResourceManager rm3(rm3_host, replicas(), rm_principal, rm::ResourceManager::kDefaultPort,
                          cfg);

  auto user = crypto::Principal::create("urn:snipe:user:fagg", rng);
  auto req_host = crypto::Principal::create("snipe://client:7201/daemon", rng);

  rm::AuthorizeRequest auth;
  auth.user_cert = crypto::Certificate::issue(ca, user.uri, user.keys.pub,
                                              {crypto::TrustPurpose::identify_user});
  auth.host_cert = crypto::Certificate::issue(ca, req_host.uri, req_host.keys.pub,
                                              {crypto::TrustPurpose::identify_host});
  auth.user_grant = crypto::SignedStatement::make(
      user, rm::user_grant_payload(user.uri, "sleeper", req_host.uri));
  auth.host_attest = crypto::SignedStatement::make(
      req_host, rm::host_attest_payload(req_host.uri, "sleeper"));
  auth.program = "sleeper";
  auth.target_host = "nodeA";

  Result<Bytes> issued(Errc::state_error, "unset");
  client_rpc->call(rm3.address(), rm::tags::kAuthorize, auth.encode(),
                   [&](Result<Bytes> r) { issued = r; });
  world.engine().run();
  ASSERT_TRUE(issued.ok()) << issued.error().to_string();
  EXPECT_EQ(rm3.stats().authorizations_issued, 1u);

  // The issued statement satisfies a daemon that trusts the RM.
  SpawnRequest spawn;
  spawn.program = "sleeper";
  spawn.authorization = issued.value();
  EXPECT_TRUE(spawn_via_rpc(daemon_a->address(), spawn).ok());

  // A grant for a different program is rejected.
  auth.user_grant = crypto::SignedStatement::make(
      user, rm::user_grant_payload(user.uri, "other-program", req_host.uri));
  Result<Bytes> rejected(Errc::state_error, "unset");
  client_rpc->call(rm3.address(), rm::tags::kAuthorize, auth.encode(),
                   [&](Result<Bytes> r) { rejected = r; });
  world.engine().run();
  EXPECT_EQ(rejected.code(), Errc::permission_denied);
  EXPECT_EQ(rm3.stats().authorizations_rejected, 1u);
}

}  // namespace
}  // namespace snipe::daemon
