// Routing zones: media edge cases, multi-hop route resolution, cache
// invalidation under faults, shard-by-zone placement (ISSUE 9 /
// DESIGN.md §routing-zones).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "simnet/fault.hpp"
#include "simnet/media.hpp"
#include "simnet/topo.hpp"
#include "simnet/world.hpp"

using namespace snipe;
using namespace snipe::simnet;

// ---- MediaModel::serialize_time edges -------------------------------------

TEST(Media, SerializeTimeZeroBytePayloadStillPaysFramingOverhead) {
  // A zero-byte datagram still serializes its 66 framing bytes:
  // 66 * 8 bits / 100 Mb/s = 5.28 us exactly.
  EXPECT_EQ(ethernet100().serialize_time(0), 5280);
  // And overhead-free media serialize nothing in zero time.
  MediaModel bare;
  bare.bandwidth_bps = 1e9;
  EXPECT_EQ(bare.serialize_time(0), 0);
}

TEST(Media, SerializeTimeIsMonotonicAndDefinedAboveMtu) {
  // serialize_time is a pure wire-clock function: the MTU check lives in
  // Host::send, so oversized payloads (rejected there) still have a
  // well-defined, monotonically growing serialization cost here.
  MediaModel eth = ethernet100();
  EXPECT_GT(eth.serialize_time(eth.mtu + 1), eth.serialize_time(eth.mtu));
  EXPECT_GT(eth.serialize_time(10 * eth.mtu), eth.serialize_time(eth.mtu));
}

TEST(Media, AtmCellTaxRoundsUpAgainstTaxedBandwidth) {
  MediaModel atm = atm155();
  double eff_bps = atm.bandwidth_bps * (1.0 - atm.cell_tax);  // 48/53 of line
  for (std::size_t payload : {std::size_t{0}, std::size_t{1}, std::size_t{48},
                              std::size_t{1500}, std::size_t{9180}}) {
    double bits = static_cast<double>(payload + atm.overhead) * 8.0;
    SimDuration t = atm.serialize_time(payload);
    // Ceil semantics: t is the smallest whole nanosecond covering the bits.
    EXPECT_GE(static_cast<double>(t) * eff_bps, bits * 1e9 - 1e-3) << payload;
    EXPECT_LT(static_cast<double>(t - 1) * eff_bps, bits * 1e9) << payload;
  }
  // The 5-in-53 cell tax costs 53/48 of the untaxed time.
  MediaModel untaxed = atm;
  untaxed.cell_tax = 0.0;
  double ratio = static_cast<double>(atm.serialize_time(9000)) /
                 static_cast<double>(untaxed.serialize_time(9000));
  EXPECT_NEAR(ratio, 53.0 / 48.0, 1e-3);
}

// ---- zone construction & shard placement ----------------------------------

TEST(Topo, ZonesDefaultShardRoundRobinAndChildrenInherit) {
  World world(5, 2);
  Zone& z0 = world.create_zone("z0");
  Zone& z1 = world.create_zone("z1");
  Zone& z1a = world.create_zone("z1/a", &z1);
  EXPECT_EQ(z0.shard(), 0u);
  EXPECT_EQ(z1.shard(), 1u);
  EXPECT_EQ(z1a.shard(), 1u);
  EXPECT_EQ(world.zone("z1/a"), &z1a);
  ASSERT_EQ(world.top_zones().size(), 2u);

  Host& h = z1a.create_host("h");
  EXPECT_EQ(h.shard(), 1u);
  EXPECT_EQ(h.zone(), &z1a);
  Router& r = z0.create_router("r");
  EXPECT_EQ(r.shard(), 0u);
  EXPECT_TRUE(r.is_router());
}

TEST(Topo, ZonePlacementCutsCrossShardTrafficVersusNaive) {
  // Two sites, intra-site traffic only.  Shard-by-zone keeps every send on
  // its own shard; naive alternating placement pushes half of them through
  // the cross-shard mailboxes.
  auto run = [](bool zoned) -> std::uint64_t {
    World world(11, 2);
    Zone& z0 = world.create_zone("site0");  // shard 0
    Zone& z1 = world.create_zone("site1");  // shard 1
    Network& lan0 = z0.create_network("site0/lan", ethernet100());
    Network& lan1 = z1.create_network("site1/lan", ethernet100());
    std::vector<Host*> a, b;
    for (int i = 0; i < 4; ++i) {
      Host& ha = zoned ? z0.create_host("a" + std::to_string(i))
                       : world.create_host("a" + std::to_string(i), i % 2);
      world.attach(ha, lan0);
      a.push_back(&ha);
      Host& hb = zoned ? z1.create_host("b" + std::to_string(i))
                       : world.create_host("b" + std::to_string(i), (i + 1) % 2);
      world.attach(hb, lan1);
      b.push_back(&hb);
    }
    std::atomic<int> delivered{0};  // handlers run on both shard threads
    for (auto* hosts : {&a, &b})
      for (Host* h : *hosts)
        EXPECT_TRUE(h->bind(9, [&delivered](const Packet&) { ++delivered; }).ok());
    // 10 staggered rounds of neighbor-to-neighbor sends within each site.
    for (int round = 0; round < 10; ++round)
      for (int i = 0; i < 4; ++i) {
        SimTime at = duration::milliseconds(1 + round) + i * 1000;
        a[i]->engine().schedule_at(at, [h = a[i], to = a[(i + 1) % 4]->name()] {
          (void)h->send(Address{to, 9}, Payload(Bytes(64, 0x5a)));
        });
        b[i]->engine().schedule_at(at, [h = b[i], to = b[(i + 1) % 4]->name()] {
          (void)h->send(Address{to, 9}, Payload(Bytes(64, 0xa5)));
        });
      }
    world.run_until(duration::seconds(1));
    EXPECT_EQ(delivered.load(), 80);
    return world.run_stats().cross_shard_packets;
  };
  std::uint64_t zoned = run(true);
  std::uint64_t naive = run(false);
  EXPECT_EQ(zoned, 0u);
  EXPECT_GT(naive, 0u);
}

// ---- route resolution -----------------------------------------------------

TEST(Topo, FatTreeRouteGoesUpAndDown) {
  World world(7);
  FatTreeOptions opt;
  opt.racks = 2;
  opt.hosts_per_rack = 2;
  opt.spines = 2;
  Zone& dc = build_fat_tree(world, "dc", opt);
  EXPECT_NE(dc.gateway(), nullptr);

  Host& src = *world.host("dc/h0_0");
  // Same rack: adjacent, no route needed (direct-send candidate exists).
  EXPECT_EQ(world.net_distance("dc/h0_0", "dc/h0_1"),
            opt.rack_media.latency);
  // Cross rack: up through tor0 to a spine, down through tor1.
  auto route = world.resolve_route(src, "dc/h1_1");
  ASSERT_NE(route, nullptr);
  ASSERT_EQ(route->hops.size(), 4u);
  EXPECT_EQ(route->hops[0].net->name(), "dc/rack0");
  EXPECT_EQ(route->hops[1].net->name().rfind("dc/up0_", 0), 0u);
  EXPECT_EQ(route->hops[2].net->name().rfind("dc/up1_", 0), 0u);
  EXPECT_EQ(route->hops[3].net->name(), "dc/rack1");
  // Hop 1 and 2 traverse the same spine plane.
  EXPECT_EQ(route->hops[1].net->name().back(), route->hops[2].net->name().back());
  EXPECT_EQ(route->latency, 2 * opt.rack_media.latency + 2 * opt.uplink_media.latency);
  EXPECT_EQ(route->mtu, opt.rack_media.mtu);
  EXPECT_EQ(world.net_distance("dc/h0_0", "dc/h1_1"), route->latency);

  // Distinct host pairs spread across both spine planes (deterministic
  // ECMP: the tie-break hashes the pair, not the clock or the heap).
  std::set<std::string> planes;
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) {
      Host& s = *world.host("dc/h0_" + std::to_string(i));
      auto r = world.resolve_route(s, "dc/h1_" + std::to_string(j));
      ASSERT_NE(r, nullptr);
      planes.insert(r->hops[1].net->name());
    }
  EXPECT_EQ(planes.size(), 2u) << "expected both spine planes in use";
}

TEST(Topo, RoutedDeliveryAccumulatesPerHopSerializeAndPropagate) {
  World world(3);
  FatTreeOptions opt;
  opt.racks = 2;
  opt.hosts_per_rack = 1;
  opt.spines = 1;
  build_fat_tree(world, "dc", opt);
  Host& src = *world.host("dc/h0_0");
  Host& dst = *world.host("dc/h1_0");

  const std::size_t kBytes = 512;
  SimTime delivered_at = -1;
  ASSERT_TRUE(dst.bind(9, [&](const Packet& p) {
                     delivered_at = dst.engine().now();
                     EXPECT_EQ(p.src.host, "dc/h0_0");
                     EXPECT_EQ(p.payload.size(), kBytes);
                     EXPECT_EQ(p.network, "dc/rack1");  // last hop
                   })
                  .ok());
  auto sent = src.send(Address{"dc/h1_0", 9}, Payload(Bytes(kBytes, 0x11)));
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(sent.value(), "dc/rack0");  // first-hop network
  world.run_all();

  SimDuration ser_rack = opt.rack_media.serialize_time(kBytes);
  SimDuration ser_up = opt.uplink_media.serialize_time(kBytes);
  EXPECT_EQ(delivered_at, 2 * (ser_rack + opt.rack_media.latency) +
                              2 * (ser_up + opt.uplink_media.latency));
}

TEST(Topo, NoRouteIsAnErrorNotACrash) {
  World world(9);
  build_lan(world, "island_a", 1, ethernet100());
  build_lan(world, "island_b", 1, ethernet100());  // never connected
  Host& a = *world.host("island_a/h0");
  auto r = a.send(Address{"island_b/h0", 9}, Payload(Bytes(8, 1)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::unreachable);
  EXPECT_EQ(world.net_distance("island_a/h0", "island_b/h0"), World::kUnreachable);
  EXPECT_EQ(world.resolve_route(a, "island_b/h0"), nullptr);
  // Unknown destination host: same error class.
  EXPECT_FALSE(a.send(Address{"nowhere", 9}, Payload(Bytes(8, 1))).ok());
}

TEST(Topo, RoutedSendRejectsPayloadAboveRouteBottleneckMtu) {
  World world(13);
  Zone& a = build_lan(world, "a", 1, atm155());      // MTU 9180 inside
  Zone& b = build_lan(world, "b", 1, atm155());
  connect_zones(a, b, wan_t3(), "wan");              // MTU 1500 bottleneck
  Host& src = *world.host("a/h0");
  auto route = world.resolve_route(src, "b/h0");
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->mtu, 1500u);
  auto r = src.send(Address{"b/h0", 9}, Payload(Bytes(2000, 2)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::invalid_argument);
  // Under the bottleneck it flies.
  EXPECT_TRUE(src.send(Address{"b/h0", 9}, Payload(Bytes(1400, 2))).ok());
}

TEST(Topo, GatewayLinkFaultInvalidatesCachedRoutesAndFailsOver) {
  World world(17);
  Zone& a = build_lan(world, "a", 1, ethernet100());
  Zone& b = build_lan(world, "b", 1, ethernet100());
  MediaModel slow = wan_t3();
  slow.latency = duration::milliseconds(40);
  Network& fast = connect_zones(a, b, wan_t3(), "wan_fast");  // 18 ms
  connect_zones(a, b, slow, "wan_slow");
  Host& src = *world.host("a/h0");

  auto r1 = world.resolve_route(src, "b/h0");
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->hops[1].net->name(), "wan_fast");
  // Cache hit: same shared route object while the epoch is unchanged.
  EXPECT_EQ(world.resolve_route(src, "b/h0"), r1);

  // A scheduled gateway-link fault bumps the route epoch; the next resolve
  // re-routes over the slow link without any explicit invalidation call.
  FaultPlan plan(world, 99);
  plan.link_down("wan_fast", duration::milliseconds(5), duration::seconds(2));
  world.run_until(duration::milliseconds(10));
  auto r2 = world.resolve_route(src, "b/h0");
  ASSERT_NE(r2, nullptr);
  EXPECT_NE(r2, r1);
  EXPECT_EQ(r2->hops[1].net->name(), "wan_slow");

  // Both links dead: negative result is cached...
  world.network("wan_slow")->set_up(false);
  EXPECT_EQ(world.resolve_route(src, "b/h0"), nullptr);
  // ...and un-cached the moment the topology heals.
  world.run_until(duration::seconds(3));  // wan_fast comes back at t=2s
  auto r3 = world.resolve_route(src, "b/h0");
  ASSERT_NE(r3, nullptr);
  EXPECT_EQ(r3->hops[1].net->name(), "wan_fast");
  (void)fast;
}

TEST(Topo, PartitionDropsRoutedPacketsEndToEnd) {
  // The partition boundary applies to the packet's (src, dst) pair even
  // though interior hops are judged under the forwarding router's lane.
  World world(19);
  Zone& a = build_lan(world, "a", 1, ethernet100());
  Zone& b = build_lan(world, "b", 1, ethernet100());
  Network& wan = connect_zones(a, b, wan_t3(), "wan");
  auto injector = std::make_shared<FaultInjector>(FaultProfile{}, Rng(4));
  injector->set_partition({{"a/h0"}, {"b/h0"}});
  wan.set_fault(injector);

  Host& src = *world.host("a/h0");
  int delivered = 0;
  ASSERT_TRUE(world.host("b/h0")->bind(9, [&](const Packet&) { ++delivered; }).ok());
  ASSERT_TRUE(src.send(Address{"b/h0", 9}, Payload(Bytes(32, 3))).ok());
  world.run_all();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(injector->stats().drops_partition.load(), 1u);

  injector->heal_partition();
  ASSERT_TRUE(src.send(Address{"b/h0", 9}, Payload(Bytes(32, 3))).ok());
  world.run_all();
  EXPECT_EQ(delivered, 1);
}

TEST(Topo, StarLanContendsPerPortAndDescribeTopologyShowsState) {
  World world(23);
  Zone& lan = build_star_lan(world, "office", 3, ethernet100());
  EXPECT_EQ(lan.routers().size(), 1u);  // the hub
  EXPECT_EQ(lan.networks().size(), 3u);

  // Hosts on a star reach each other through the hub: two hops.
  Host& h0 = *world.host("office/h0");
  auto route = world.resolve_route(h0, "office/h2");
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->hops.size(), 2u);

  int got = 0;
  ASSERT_TRUE(world.host("office/h2")->bind(7, [&](const Packet&) { ++got; }).ok());
  ASSERT_TRUE(h0.send(Address{"office/h2", 7}, Payload(Bytes(100, 9))).ok());
  world.run_all();
  EXPECT_EQ(got, 1);

  std::string dump = world.describe_topology();
  EXPECT_NE(dump.find("zone office"), std::string::npos);
  EXPECT_NE(dump.find("office/hub"), std::string::npos);
  EXPECT_NE(dump.find("router"), std::string::npos);
  EXPECT_NE(dump.find("up"), std::string::npos);
  world.network("office/l1")->set_up(false);
  EXPECT_NE(world.describe_topology().find("DOWN"), std::string::npos);
}
