// Tests for the SVM mobile-code machine: instruction semantics, quotas,
// checkpoint/restore equivalence, the assembler, verified playground
// loading, and scheduled VmTask execution.
#include <gtest/gtest.h>

#include "playground/playground.hpp"
#include "playground/svm.hpp"
#include "playground/svmasm.hpp"
#include "rcds/server.hpp"

namespace snipe::playground {
namespace {

Vm make_vm(const std::string& source, VmQuota quota = {}) {
  auto program = assemble(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().to_string());
  return Vm(std::move(program).take(), quota);
}

std::vector<std::int64_t> run_collect(Vm& vm, std::uint64_t budget = 1'000'000) {
  vm.run(budget);
  return vm.drain_output();
}

TEST(Svm, ArithmeticAndEmit) {
  Vm vm = make_vm(R"(
    push 6
    push 7
    mul
    emit
    push 10
    push 3
    div
    emit
    push 10
    push 3
    mod
    emit
    push 0
    halt
  )");
  EXPECT_EQ(run_collect(vm), (std::vector<std::int64_t>{42, 3, 1}));
  EXPECT_EQ(vm.status(), VmStatus::halted);
  EXPECT_EQ(vm.exit_code(), 0);
}

TEST(Svm, ComparisonsAndLogic) {
  Vm vm = make_vm(R"(
    push 3
    push 5
    lt
    emit     ; 1
    push 3
    push 5
    ge
    emit     ; 0
    push 1
    push 0
    or
    emit     ; 1
    push 1
    not
    emit     ; 0
    push 7
    neg
    emit     ; -7
    halt
  )");
  EXPECT_EQ(run_collect(vm), (std::vector<std::int64_t>{1, 0, 1, 0, -7}));
}

TEST(Svm, LoopWithGlobals) {
  // Sum 1..10 into global 0.
  Vm vm = make_vm(R"(
    .globals 2
    push 1
    storeg 1
  loop:
    loadg 0
    loadg 1
    add
    storeg 0
    loadg 1
    push 1
    add
    dup
    storeg 1
    push 10
    le
    jnz loop
    loadg 0
    emit
    halt
  )");
  EXPECT_EQ(run_collect(vm), (std::vector<std::int64_t>{55}));
}

TEST(Svm, FunctionCallsWithArgsAndResult) {
  // square(x) = x*x; emit square(9).
  Vm vm = make_vm(R"(
    jmp main
  square:
    loadl 0
    loadl 0
    mul
    ret
  main:
    push 9
    call square 1
    emit
    halt
  )");
  EXPECT_EQ(run_collect(vm), (std::vector<std::int64_t>{81}));
}

TEST(Svm, RecursionFactorial) {
  Vm vm = make_vm(R"(
    jmp main
  fact:
    loadl 0
    push 2
    lt
    jz recurse
    push 1
    ret
  recurse:
    loadl 0
    push 1
    sub
    call fact 1
    loadl 0
    mul
    ret
  main:
    push 10
    call fact 1
    emit
    halt
  )");
  EXPECT_EQ(run_collect(vm), (std::vector<std::int64_t>{3628800}));
}

TEST(Svm, RecvBlocksUntilInput) {
  Vm vm = make_vm(R"(
  loop:
    recv
    push 2
    mul
    emit
    jmp loop
  )");
  vm.run(1000);
  EXPECT_EQ(vm.status(), VmStatus::blocked);
  vm.push_input(21);
  vm.run(1000);
  EXPECT_EQ(vm.drain_output(), (std::vector<std::int64_t>{42}));
  EXPECT_EQ(vm.status(), VmStatus::blocked);
}

TEST(Svm, TrapsAreReported) {
  Vm div0 = make_vm("push 1\npush 0\ndiv\nhalt");
  div0.run(100);
  EXPECT_EQ(div0.status(), VmStatus::trapped);
  EXPECT_NE(div0.fault().find("division by zero"), std::string::npos);

  Vm underflow = make_vm("pop\nhalt");
  underflow.run(100);
  EXPECT_EQ(underflow.status(), VmStatus::trapped);

  Vm bad_jump = make_vm("jmp 999");
  bad_jump.run(100);
  EXPECT_EQ(bad_jump.status(), VmStatus::trapped);

  Vm explicit_trap = make_vm("trap");
  explicit_trap.run(100);
  EXPECT_EQ(explicit_trap.status(), VmStatus::trapped);
}

TEST(Svm, CycleQuotaEnforced) {
  VmQuota quota;
  quota.max_cycles = 1000;
  Vm vm = make_vm("loop: jmp loop", quota);
  vm.run(10'000'000);
  EXPECT_EQ(vm.status(), VmStatus::quota);
  EXPECT_EQ(vm.cycles_used(), 1000u);
}

TEST(Svm, WorkInstructionChargesCycles) {
  VmQuota quota;
  quota.max_cycles = 1000;
  Vm vm = make_vm("work 500\nwork 600\nhalt", quota);
  vm.run(100);
  EXPECT_EQ(vm.status(), VmStatus::quota);  // 500 + 600 > 1000
}

TEST(Svm, StackQuotaEnforced) {
  VmQuota quota;
  quota.max_stack = 16;
  Vm vm = make_vm("loop: push 1\njmp loop", quota);
  vm.run(10'000);
  EXPECT_EQ(vm.status(), VmStatus::quota);
}

TEST(Svm, CallDepthQuotaEnforced) {
  VmQuota quota;
  quota.max_frames = 8;
  Vm vm = make_vm(R"(
    jmp main
  f:
    call f 0
    ret
  main:
    call f 0
    halt
  )",
                  quota);
  vm.run(10'000);
  EXPECT_EQ(vm.status(), VmStatus::quota);
}

TEST(Svm, QuantumSlicingPreservesSemantics) {
  auto full = make_vm(R"(
    .globals 1
  loop:
    loadg 0
    push 1
    add
    dup
    storeg 0
    push 1000
    lt
    jnz loop
    loadg 0
    emit
    halt
  )");
  auto sliced = full;  // copy before running
  full.run(1'000'000);
  while (sliced.status() != VmStatus::halted) sliced.run(7);  // odd quantum
  EXPECT_EQ(full.drain_output(), sliced.drain_output());
  EXPECT_EQ(full.cycles_used(), sliced.cycles_used());
}

TEST(Svm, CheckpointRestoreResumesExactly) {
  // Run half the loop, snapshot, restore on a "different host", finish; the
  // result must match an uninterrupted run.
  std::string source = R"(
    .globals 2
    push 1
    storeg 1
  loop:
    loadg 0
    loadg 1
    add
    storeg 0
    loadg 1
    push 1
    add
    dup
    storeg 1
    push 100
    le
    jnz loop
    loadg 0
    emit
    halt
  )";
  Vm uninterrupted = make_vm(source);
  uninterrupted.run(1'000'000);
  auto expected = uninterrupted.drain_output();

  Vm first_half = make_vm(source);
  first_half.run(250);  // stop mid-loop
  ASSERT_EQ(first_half.status(), VmStatus::running);
  Bytes snapshot = first_half.snapshot();

  Vm resumed = Vm::restore(snapshot).value();
  EXPECT_EQ(resumed.cycles_used(), first_half.cycles_used());
  resumed.run(1'000'000);
  EXPECT_EQ(resumed.status(), VmStatus::halted);
  EXPECT_EQ(resumed.drain_output(), expected);
}

TEST(Svm, CheckpointPreservesPendingIo) {
  Vm vm = make_vm(R"(
    recv
    recv
    add
    emit
    push 0
    halt
  )");
  vm.push_input(40);
  vm.run(1);  // consume nothing yet (first recv executes on next run)
  Bytes snapshot = vm.snapshot();
  Vm restored = Vm::restore(snapshot).value();
  restored.push_input(2);
  restored.run(1000);
  EXPECT_EQ(restored.drain_output(), (std::vector<std::int64_t>{42}));
}

TEST(Svm, CkptInstructionPausesForHost) {
  Vm vm = make_vm(R"(
    push 7
    emit
    ckpt
    push 8
    emit
    halt
  )");
  vm.run(1000);
  EXPECT_EQ(vm.status(), VmStatus::checkpoint);
  EXPECT_EQ(vm.drain_output(), (std::vector<std::int64_t>{7}));
  vm.acknowledge_checkpoint();
  vm.run(1000);
  EXPECT_EQ(vm.status(), VmStatus::halted);
  EXPECT_EQ(vm.drain_output(), (std::vector<std::int64_t>{8}));
}

TEST(Svm, SelfReturnsInstanceId) {
  Vm vm = make_vm("self\nemit\nhalt");
  vm.set_instance_id(1234);
  vm.run(100);
  EXPECT_EQ(vm.drain_output(), (std::vector<std::int64_t>{1234}));
}

TEST(Svm, ProgramEncodeDecodeRoundTrip) {
  auto program = assemble("push 1\nemit\nhalt").take();
  auto decoded = Program::decode(program.encode()).value();
  ASSERT_EQ(decoded.code.size(), program.code.size());
  EXPECT_EQ(decoded.code[0].imm, 1);
  EXPECT_FALSE(Program::decode(Bytes{1, 2}).ok());
}

TEST(SvmAsm, ReportsErrorsWithLineNumbers) {
  auto missing_label = assemble("jmp nowhere");
  ASSERT_FALSE(missing_label.ok());
  EXPECT_NE(missing_label.error().message.find("nowhere"), std::string::npos);

  auto bad_mnemonic = assemble("push 1\nfrobnicate");
  ASSERT_FALSE(bad_mnemonic.ok());
  EXPECT_NE(bad_mnemonic.error().message.find("line 2"), std::string::npos);

  EXPECT_FALSE(assemble("push").ok());         // missing operand
  EXPECT_FALSE(assemble("dup 3").ok());        // spurious operand
  EXPECT_FALSE(assemble("x:\nx:\nhalt").ok()); // duplicate label
  EXPECT_FALSE(assemble(".globals -1").ok());
}

TEST(SvmAsm, LabelsAndCommentsAndSharedLines) {
  auto program = assemble(R"(
    ; header comment
    start: push 5   ; inline comment
    emit
    jmp end
    push 99
    end: halt
  )");
  ASSERT_TRUE(program.ok());
  Vm vm(std::move(program).take(), {});
  vm.run(100);
  EXPECT_EQ(vm.drain_output(), (std::vector<std::int64_t>{5}));
  EXPECT_EQ(vm.status(), VmStatus::halted);
}

// ---- Playground verification + VmTask scheduling ----

struct PlaygroundFixture : ::testing::Test {
  PlaygroundFixture() : world(71), rng(72) {
    world.create_network("lan", simnet::ethernet100());
    for (const char* n : {"rc", "fs", "node"})
      world.attach(world.create_host(n), *world.network("lan"));
    rc_server = std::make_unique<rcds::RcServer>(*world.host("rc"));
    fs = std::make_unique<files::FileServer>(*world.host("fs"),
                                             std::vector<simnet::Address>{rc_server->address()});
    node_rpc = std::make_unique<transport::RpcEndpoint>(*world.host("node"), 9300);
    rc_client = std::make_unique<rcds::RcClient>(
        *node_rpc, std::vector<simnet::Address>{rc_server->address()});
    file_client = std::make_unique<files::FileClient>(
        *node_rpc, std::vector<simnet::Address>{rc_server->address()});

    signer = crypto::Principal::create("urn:snipe:user:codesigner", rng);
    ca = crypto::Principal::create("urn:snipe:rm:ca", rng);
    signer_cert = crypto::Certificate::issue(ca, signer.uri, signer.keys.pub,
                                             {crypto::TrustPurpose::sign_mobile_code});
    trust.trust(ca.uri, ca.keys.pub, crypto::TrustPurpose::sign_mobile_code);
  }

  void publish(const std::string& lifn, const Program& program) {
    Result<void> published(Errc::state_error, "unset");
    publish_code(*file_client, *rc_client, fs->address(), lifn, program, signer, signer_cert,
                 [&](Result<void> r) { published = r; });
    world.engine().run();
    ASSERT_TRUE(published.ok()) << published.error().to_string();
  }

  simnet::World world;
  Rng rng;
  std::unique_ptr<rcds::RcServer> rc_server;
  std::unique_ptr<files::FileServer> fs;
  std::unique_ptr<transport::RpcEndpoint> node_rpc;
  std::unique_ptr<rcds::RcClient> rc_client;
  std::unique_ptr<files::FileClient> file_client;
  crypto::Principal signer, ca;
  crypto::Certificate signer_cert;
  crypto::TrustStore trust;
};

TEST_F(PlaygroundFixture, LoadsVerifiedCode) {
  publish("lifn://utk.edu/code/hello", assemble("push 42\nemit\nhalt").take());
  Playground pg(*rc_client, *file_client, trust);
  Result<Vm> loaded(Errc::state_error, "unset");
  pg.load("lifn://utk.edu/code/hello", [&](Result<Vm> r) { loaded = std::move(r); });
  world.engine().run();
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  loaded.value().run(100);
  EXPECT_EQ(loaded.value().drain_output(), (std::vector<std::int64_t>{42}));
  EXPECT_EQ(pg.stats().loads_ok, 1u);
}

TEST_F(PlaygroundFixture, RejectsUnsignedCode) {
  // Store the file and hash but no signature metadata.
  Bytes code = assemble("halt").take().encode();
  Result<void> wrote(Errc::state_error, "unset");
  file_client->write(fs->address(), "lifn://utk.edu/code/unsigned", code,
                     [&](Result<void> r) { wrote = r; });
  world.engine().run();
  ASSERT_TRUE(wrote.ok());

  Playground pg(*rc_client, *file_client, trust);
  Result<Vm> loaded(Errc::state_error, "unset");
  pg.load("lifn://utk.edu/code/unsigned", [&](Result<Vm> r) { loaded = std::move(r); });
  world.engine().run();
  EXPECT_EQ(loaded.code(), Errc::permission_denied);
  EXPECT_EQ(pg.stats().loads_rejected, 1u);
}

TEST_F(PlaygroundFixture, RejectsCodeSignedByUntrustedSigner) {
  // A signer whose certificate comes from a CA the playground does NOT
  // trust.
  auto rogue_ca = crypto::Principal::create("urn:snipe:rm:rogue", rng);
  auto rogue_signer = crypto::Principal::create("urn:snipe:user:rogue", rng);
  auto rogue_cert = crypto::Certificate::issue(rogue_ca, rogue_signer.uri,
                                               rogue_signer.keys.pub,
                                               {crypto::TrustPurpose::sign_mobile_code});
  Result<void> published(Errc::state_error, "unset");
  publish_code(*file_client, *rc_client, fs->address(), "lifn://utk.edu/code/rogue",
               assemble("halt").take(), rogue_signer, rogue_cert,
               [&](Result<void> r) { published = r; });
  world.engine().run();
  ASSERT_TRUE(published.ok());

  Playground pg(*rc_client, *file_client, trust);
  Result<Vm> loaded(Errc::state_error, "unset");
  pg.load("lifn://utk.edu/code/rogue", [&](Result<Vm> r) { loaded = std::move(r); });
  world.engine().run();
  EXPECT_EQ(loaded.code(), Errc::permission_denied);
}

TEST_F(PlaygroundFixture, RejectsTamperedCode) {
  publish("lifn://utk.edu/code/tamper", assemble("push 1\nemit\nhalt").take());
  // Corrupt the stored bytes after signing (announce=false keeps metadata).
  fs->store_local("lifn://utk.edu/code/tamper", assemble("push 666\nemit\nhalt").take().encode(),
                  /*announce=*/false);
  Playground pg(*rc_client, *file_client, trust);
  Result<Vm> loaded(Errc::state_error, "unset");
  pg.load("lifn://utk.edu/code/tamper", [&](Result<Vm> r) { loaded = std::move(r); });
  world.engine().run();
  EXPECT_EQ(loaded.code(), Errc::corrupt);  // content hash mismatch
}

TEST_F(PlaygroundFixture, UnsignedModeRunsAnything) {
  Bytes code = assemble("halt").take().encode();
  file_client->write(fs->address(), "lifn://utk.edu/code/любой", code, [](Result<void>) {});
  world.engine().run();
  PlaygroundConfig cfg;
  cfg.require_signature = false;
  Playground pg(*rc_client, *file_client, {}, cfg);
  Result<Vm> loaded(Errc::state_error, "unset");
  pg.load("lifn://utk.edu/code/любой", [&](Result<Vm> r) { loaded = std::move(r); });
  world.engine().run();
  EXPECT_TRUE(loaded.ok());
}

TEST(VmTask, RunsOnVirtualClockAndCharges) {
  simnet::World world(73);
  auto program = assemble(R"(
    work 1000000
    push 1
    emit
    halt
  )");
  VmTask task(world.engine(), Vm(std::move(program).take(), {}), /*cycle_time=*/10);
  std::vector<std::int64_t> out;
  VmStatus final_status = VmStatus::ready;
  task.set_output_handler([&](std::int64_t v) { out.push_back(v); });
  task.set_exit_handler([&](VmStatus s, std::int64_t) { final_status = s; });
  task.start();
  world.engine().run();
  EXPECT_EQ(out, (std::vector<std::int64_t>{1}));
  EXPECT_EQ(final_status, VmStatus::halted);
  // ~1e6 cycles at 10 ns each -> ~10 ms of virtual CPU.
  EXPECT_GT(world.now(), duration::milliseconds(9));
  EXPECT_LT(world.now(), duration::milliseconds(12));
}

TEST(VmTask, SuspendResumeAndKill) {
  simnet::World world(74);
  auto program = assemble("loop: work 100\njmp loop");
  VmTask task(world.engine(), Vm(std::move(program).take(), {}));
  task.start();
  world.engine().run_for(duration::milliseconds(1));
  task.suspend();
  std::uint64_t cycles_at_suspend = task.vm().cycles_used();
  world.engine().run_for(duration::milliseconds(5));
  EXPECT_EQ(task.vm().cycles_used(), cycles_at_suspend);  // really stopped
  task.resume();
  world.engine().run_for(duration::milliseconds(1));
  EXPECT_GT(task.vm().cycles_used(), cycles_at_suspend);
  bool exited = false;
  task.set_exit_handler([&](VmStatus, std::int64_t) { exited = true; });
  task.kill();
  EXPECT_TRUE(exited);
}

TEST(VmTask, CheckpointHandlerReceivesRestorableSnapshot) {
  simnet::World world(75);
  auto program = assemble(R"(
    push 11
    emit
    ckpt
    push 22
    emit
    halt
  )");
  VmTask task(world.engine(), Vm(std::move(program).take(), {}));
  Bytes snapshot;
  task.set_checkpoint_handler([&](Bytes s) { snapshot = std::move(s); });
  task.start();
  world.engine().run();
  ASSERT_FALSE(snapshot.empty());
  // The snapshot was taken *at* the checkpoint: restoring it replays the
  // rest of the program.
  Vm restored = Vm::restore(snapshot).value();
  restored.run(1000);
  EXPECT_EQ(restored.drain_output(), (std::vector<std::int64_t>{22}));
}

}  // namespace
}  // namespace snipe::playground
