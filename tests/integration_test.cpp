// Whole-system integration: a small SNIPE deployment exercising every
// component together — replicated registry, file servers, daemons with
// security on, a resource manager, signed mobile code in playgrounds,
// SnipeProcess messaging, §5.7 pseudo-processes, and a console.
#include <gtest/gtest.h>

#include "core/console.hpp"
#include "core/group.hpp"
#include "core/process.hpp"
#include "obs/trace.hpp"
#include "playground/svmasm.hpp"
#include "transport/srudp.hpp"
#include "rcds/server.hpp"
#include "rm/resource_manager.hpp"
#include "util/uri.hpp"

namespace snipe {
namespace {

using simnet::Address;

struct Deployment : ::testing::Test {
  Deployment() : world(424242), rng(31337) {
    // Two sites joined by a WAN.
    auto& site1 = world.create_network("site1", simnet::ethernet100());
    auto& site2 = world.create_network("site2", simnet::atm155());
    auto& wan = world.create_network("wan", simnet::wan_t3());
    auto add = [&](const std::string& name, simnet::Network& lan) -> simnet::Host& {
      auto& h = world.create_host(name);
      world.attach(h, lan);
      world.attach(h, wan);
      return h;
    };
    add("rc1", site1);
    add("rc2", site2);
    add("fs1", site1);
    add("node1", site1);
    add("node2", site2);
    add("rmhost", site1);
    add("user", site2);

    rc1 = std::make_unique<rcds::RcServer>(*world.host("rc1"));
    rc2 = std::make_unique<rcds::RcServer>(*world.host("rc2"));
    rc1->set_peers({rc2->address()});
    rc2->set_peers({rc1->address()});

    fs = std::make_unique<files::FileServer>(*world.host("fs1"), replicas());

    // Full trust setup (§4).
    ca = crypto::Principal::create("urn:snipe:ca:root", rng);
    signer = crypto::Principal::create("urn:snipe:user:dev", rng);
    signer_cert = crypto::Certificate::issue(ca, signer.uri, signer.keys.pub,
                                             {crypto::TrustPurpose::sign_mobile_code});
    rm_principal = crypto::Principal::create("urn:snipe:rm:grm", rng);

    daemon::DaemonConfig dcfg;
    dcfg.require_authorization = true;
    dcfg.trust.trust(ca.uri, ca.keys.pub, crypto::TrustPurpose::sign_mobile_code);
    dcfg.trust.trust(rm_principal.uri, rm_principal.keys.pub,
                     crypto::TrustPurpose::grant_resources);
    d1 = std::make_unique<daemon::SnipeDaemon>(*world.host("node1"), replicas(),
                                               daemon::SnipeDaemon::kDefaultPort, dcfg);
    d2 = std::make_unique<daemon::SnipeDaemon>(*world.host("node2"), replicas(),
                                               daemon::SnipeDaemon::kDefaultPort, dcfg);
    grm = std::make_unique<rm::ResourceManager>(*world.host("rmhost"), replicas(),
                                                rm_principal);
    grm->manage_host("node1", d1->address());
    grm->manage_host("node2", d2->address());
    world.engine().run_for(duration::seconds(5));
  }

  std::vector<Address> replicas() { return {rc1->address(), rc2->address()}; }

  template <typename Pred>
  void pump_until(Pred pred) {
    while (!pred() && world.engine().step()) {
    }
  }

  simnet::World world;
  Rng rng;
  std::unique_ptr<rcds::RcServer> rc1, rc2;
  std::unique_ptr<files::FileServer> fs;
  crypto::Principal ca, signer, rm_principal;
  crypto::Certificate signer_cert;
  std::unique_ptr<daemon::SnipeDaemon> d1, d2;
  std::unique_ptr<rm::ResourceManager> grm;
};

TEST_F(Deployment, SignedAgentSpawnedViaRmRunsAndReports) {
  // Publish a signed agent that doubles its inputs.
  auto program = playground::assemble(R"(
    loop:
      recv
      push 2
      mul
      emit
      jmp loop
  )");
  ASSERT_TRUE(program.ok());

  core::SnipeProcess user(*world.host("user"), "user", replicas());
  files::FileClient files(user.rpc(), replicas());
  rcds::RcClient rc(user.rpc(), replicas());
  bool published = false;
  playground::publish_code(files, rc, fs->address(), "lifn://code/doubler", program.value(),
                           signer, signer_cert,
                           [&](Result<void> r) { published = r.ok(); });
  world.engine().run();
  ASSERT_TRUE(published);

  // Spawn via the RM (which signs the authorization the daemons demand).
  daemon::SpawnRequest req;
  req.program = "lifn://code/doubler";
  req.name = "doubler";
  req.args = {21};
  Result<daemon::SpawnReply> reply(Errc::state_error, "unset");
  bool replied = false;
  user.spawn_via_rm(grm->address(), req, [&](Result<daemon::SpawnReply> r) {
    replied = true;
    reply = r;
  });
  pump_until([&] { return replied; });
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();

  // The VM consumed input 21 and is blocked; it lives on one of the nodes.
  world.engine().run_for(duration::milliseconds(100));
  auto& home = reply.value().host == "node1" ? *d1 : *d2;
  EXPECT_EQ(home.task_state("urn:snipe:proc:doubler").value(),
            daemon::TaskState::running);

  // Console sees it in the host's task metadata and in its own record.
  core::SnipeProcess console_proc(*world.host("user"), "console", replicas());
  core::Console console(console_proc);
  Result<std::vector<std::string>> on_host(Errc::state_error, "unset");
  console.processes_on_host(home.host_url(),
                            [&](Result<std::vector<std::string>> r) { on_host = r; });
  world.engine().run();
  ASSERT_TRUE(on_host.ok());
  EXPECT_NE(std::find(on_host.value().begin(), on_host.value().end(),
                      "urn:snipe:proc:doubler"),
            on_host.value().end());
}

TEST_F(Deployment, SpawnViaHostIsBrokeredThroughRm) {
  // §5.5: the host metadata lists the RM as broker (manage_host registered
  // it), so spawn_via_host routes through the RM, which authorizes it.
  auto program = playground::assemble("push 0\nhalt");
  core::SnipeProcess user(*world.host("user"), "user2", replicas());
  files::FileClient files(user.rpc(), replicas());
  rcds::RcClient rc(user.rpc(), replicas());
  bool published = false;
  playground::publish_code(files, rc, fs->address(), "lifn://code/exit0", program.value(),
                           signer, signer_cert,
                           [&](Result<void> r) { published = r.ok(); });
  world.engine().run();
  ASSERT_TRUE(published);

  daemon::SpawnRequest req;
  req.program = "lifn://code/exit0";
  req.name = "brokered";
  Result<daemon::SpawnReply> reply(Errc::state_error, "unset");
  bool replied = false;
  user.spawn_via_host("node1", req, [&](Result<daemon::SpawnReply> r) {
    replied = true;
    reply = r;
  });
  pump_until([&] { return replied; });
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  EXPECT_GE(grm->stats().allocations, 1u);  // went through the broker
}

TEST_F(Deployment, PseudoProcessFansOutToReplicas) {
  // §5.7: three replicas join a group; a pseudo-process URN points at the
  // group; one send reaches all three.
  std::vector<std::unique_ptr<core::SnipeProcess>> replicas_procs;
  std::vector<std::unique_ptr<core::MulticastGroup>> memberships;
  std::string g = group_urn("replica-set");
  int delivered = 0;
  for (int i = 0; i < 3; ++i) {
    auto host = i == 0 ? "node1" : (i == 1 ? "node2" : "user");
    replicas_procs.push_back(std::make_unique<core::SnipeProcess>(
        *world.host(host), "replica-" + std::to_string(i), replicas()));
    world.engine().run();
    memberships.push_back(
        std::make_unique<core::MulticastGroup>(*replicas_procs.back(), g));
    world.engine().run();
    memberships.back()->set_handler([&](const std::string&, Bytes body) {
      auto msg = core::UserMessage::decode(body);
      ASSERT_TRUE(msg.ok());
      EXPECT_EQ(msg.value().tag, 9u);
      EXPECT_EQ(to_string(msg.value().body), "compute!");
      ++delivered;
    });
  }

  core::SnipeProcess client(*world.host("rmhost"), "pseudo-client", replicas());
  world.engine().run();
  client.register_pseudo_process("urn:snipe:proc:replicated-service", g);
  world.engine().run();

  Result<void> sent(Errc::state_error, "unset");
  client.send("urn:snipe:proc:replicated-service", 9, to_bytes("compute!"),
              [&](Result<void> r) { sent = r; });
  world.engine().run();
  ASSERT_TRUE(sent.ok()) << sent.error().to_string();
  EXPECT_EQ(delivered, 3);
}

TEST_F(Deployment, TraceRecordsSpawnFailoverMigrationInOrder) {
  // The virtual-time tracer should tell the story of a whole scenario in
  // order: a task spawn (daemon), a transport failover (transport), then a
  // process migration (core) — each later than the one before it.
  auto& tracer = obs::Tracer::global();
  tracer.set_enabled(true);
  tracer.clear();

  // 1. Spawn a signed agent via the RM -> daemon emits "task.running".
  auto program = playground::assemble(R"(
    loop:
      recv
      push 2
      mul
      emit
      jmp loop
  )");
  ASSERT_TRUE(program.ok());
  core::SnipeProcess user(*world.host("user"), "trace-user", replicas());
  files::FileClient files(user.rpc(), replicas());
  rcds::RcClient rc(user.rpc(), replicas());
  bool published = false;
  playground::publish_code(files, rc, fs->address(), "lifn://code/traced", program.value(),
                           signer, signer_cert,
                           [&](Result<void> r) { published = r.ok(); });
  world.engine().run();
  ASSERT_TRUE(published);
  daemon::SpawnRequest req;
  req.program = "lifn://code/traced";
  req.name = "traced";
  bool replied = false;
  Result<daemon::SpawnReply> reply(Errc::state_error, "unset");
  user.spawn_via_rm(grm->address(), req, [&](Result<daemon::SpawnReply> r) {
    replied = true;
    reply = r;
  });
  pump_until([&] { return replied; });
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();

  // 2. SRUDP stream between two dual-homed hosts (site1 + wan); killing the
  //    receiver's site1 NIC mid-stream forces "srudp.route_switch".
  transport::SrudpEndpoint tx(*world.host("node1"), 7501);
  transport::SrudpEndpoint rx(*world.host("fs1"), 7502);
  int delivered = 0;
  rx.set_handler([&](const Address&, Payload) { ++delivered; });
  for (int i = 0; i < 40; ++i) tx.send(rx.address(), Bytes(32'768, 0x5a));
  world.engine().run_for(duration::milliseconds(10));
  world.host("fs1")->nic_on("site1")->set_up(false);
  world.engine().run();
  ASSERT_EQ(delivered, 40);
  ASSERT_GE(tx.stats().route_switches, 1u);

  // 3. Migrate a SnipeProcess -> "process.migrated".
  core::SnipeProcess roamer(*world.host("node1"), "roamer", replicas());
  world.engine().run();
  bool migrated = false;
  roamer.migrate_to(*world.host("node2"), [&](Result<void> r) { migrated = r.ok(); });
  world.engine().run();
  ASSERT_TRUE(migrated);

  // The trace contains all three milestones, in strictly increasing order.
  auto events = tracer.events();
  auto index_of = [&](const std::string& cat, const std::string& name) {
    for (std::size_t i = 0; i < events.size(); ++i)
      if (events[i].cat == cat && events[i].name == name) return static_cast<long>(i);
    return -1L;
  };
  long spawn = index_of("daemon", "task.running");
  long failover = index_of("transport", "srudp.route_switch");
  long migration = index_of("core", "process.migrated");
  ASSERT_GE(spawn, 0) << "no task.running event";
  ASSERT_GE(failover, 0) << "no srudp.route_switch event";
  ASSERT_GE(migration, 0) << "no process.migrated event";
  EXPECT_LT(spawn, failover);
  EXPECT_LT(failover, migration);
  // Virtual timestamps are monotone with the event order.
  EXPECT_LE(events[spawn].ts, events[failover].ts);
  EXPECT_LE(events[failover].ts, events[migration].ts);
}

TEST_F(Deployment, ReplicatedHttpServiceSurvivesLocationFailure) {
  // §5.7 last bullet: a service at multiple locations; the gateway falls
  // over to the next location when the first dies.
  core::SnipeProcess s1(*world.host("node1"), "web1", replicas());
  core::SnipeProcess s2(*world.host("node2"), "web2", replicas());
  core::HttpServer server1(s1, "http://svc/", [](const core::HttpRequest&) {
    return core::HttpResponse{200, to_bytes("from web1")};
  });
  core::HttpServer server2(s2, "http://svc/", [](const core::HttpRequest&) {
    return core::HttpResponse{200, to_bytes("from web2")};
  });
  world.engine().run();
  // Both register under the same service URI (kServiceLocation is set by
  // each; make them coexist as two values).
  rcds::RcClient rc(s2.rpc(), replicas());
  rc.apply("http://svc/",
           {rcds::op_add(rcds::names::kServiceLocation, s1.urn()),
            rcds::op_add(rcds::names::kServiceLocation, s2.urn())},
           [](Result<std::vector<rcds::Assertion>>) {});
  world.engine().run();

  core::SnipeProcess browser(*world.host("user"), "browser", replicas());
  core::HttpGateway gateway(browser);
  world.engine().run();

  // Kill whichever location the gateway would try first; the request must
  // still succeed via the other.
  world.host("node1")->set_up(false);
  Result<core::HttpResponse> response(Errc::state_error, "unset");
  gateway.request("http://svc/", core::HttpRequest{},
                  [&](Result<core::HttpResponse> r) { response = r; });
  world.engine().run_for(duration::seconds(30));
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().status, 200);
}

}  // namespace
}  // namespace snipe
