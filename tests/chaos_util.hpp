// Shared plumbing for the chaos suite (tests/chaos_test.cpp): seed
// handling, per-peer delivery ledgers, and run fingerprints for the
// replayability assertions.
//
// Seed contract: every chaos scenario derives all of its randomness from
// one 64-bit seed — the world's engine seed, the FaultPlan seed and the
// workload sizes are all functions of it.  The suite runs each scenario
// across several seeds starting at chaos_seed(); set SNIPE_CHAOS_SEED to
// reproduce a CI failure locally with the exact same runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simnet/fault.hpp"
#include "simnet/world.hpp"

namespace snipe::chaos {

/// Base seed for the suite: SNIPE_CHAOS_SEED when set (any strtoull base),
/// else the fixed default so CI runs are reproducible by default.
inline std::uint64_t chaos_seed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("SNIPE_CHAOS_SEED");
    if (env != nullptr && *env != '\0') return std::strtoull(env, nullptr, 0);
    return 0xC7A05C0DEULL;
  }();
  return seed;
}

/// Deterministic pseudo-random payload; distinct (seed, index) pairs give
/// distinct contents so misordered or cross-wired deliveries cannot pass.
inline Bytes chaos_payload(std::size_t n, std::uint64_t seed, std::uint32_t index) {
  Bytes b(n);
  std::uint32_t x = static_cast<std::uint32_t>(seed ^ (seed >> 32)) * 2654435761u +
                    index * 40503u + 1;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    b[i] = static_cast<std::uint8_t>(x >> 24);
  }
  return b;
}

/// A compact, order-sensitive digest of the global tracer's contents.
/// Two same-seed runs of a scenario must produce byte-identical digests —
/// that is the replay contract DESIGN.md documents.  Call
/// obs::Tracer::global().clear() before the run so earlier tests in the
/// same binary cannot leak events into the digest.
/// `exclude_cat` drops one category from the digest — the flow-tracing
/// determinism test compares a flow-on run against a flow-off run, which
/// must match exactly once the "flow" events themselves are set aside.
inline std::string trace_digest(const std::string& exclude_cat = {}) {
  std::string out;
  for (const auto& e : obs::Tracer::global().events()) {
    if (!exclude_cat.empty() && e.cat == exclude_cat) continue;
    out += std::to_string(e.ts);
    out += ':';
    out += e.cat;
    out += '/';
    out += e.name;
    out += ';';
  }
  return out;
}

/// Canonical-order variant for sharded runs: record order interleaves
/// nondeterministically when shard worker threads trace concurrently, so
/// this digests Tracer::events_canonical() — stably sorted by (ts, cat,
/// name, ...), a pure function of the per-timestamp event multiset.  The
/// sharded engine's determinism contract (DESIGN.md §sharded-engine) makes
/// that multiset identical for every shard count of the same seeded world,
/// which is exactly what ChaosSharded asserts.
inline std::string trace_digest_canonical(const std::string& exclude_cat = {}) {
  std::string out;
  for (const auto& e : obs::Tracer::global().events_canonical()) {
    if (!exclude_cat.empty() && e.cat == exclude_cat) continue;
    out += std::to_string(e.ts);
    out += ':';
    out += e.cat;
    out += '/';
    out += e.name;
    out += ';';
  }
  return out;
}

/// Multi-category variant: the fleet-telemetry determinism test compares an
/// exporter-on run against an exporter-off run, which must match once both
/// the "flow" and "telemetry" categories are set aside.
inline std::string trace_digest(const std::vector<std::string>& exclude_cats) {
  std::string out;
  for (const auto& e : obs::Tracer::global().events()) {
    bool excluded = false;
    for (const auto& cat : exclude_cats)
      if (e.cat == cat) {
        excluded = true;
        break;
      }
    if (excluded) continue;
    out += std::to_string(e.ts);
    out += ':';
    out += e.cat;
    out += '/';
    out += e.name;
    out += ';';
  }
  return out;
}

/// Appends one "<seed> <scenario> <fnv1a(digest)>" line to the file named
/// by SNIPE_CHAOS_DIGEST_LOG (no-op when unset).  chaos_soak.sh points the
/// sweep's runs at one log so cross-seed digest drift — a scenario whose
/// fingerprint changes between soak runs of the *same* seed — is diffable
/// after the fact without storing full digests.
inline void log_digest(const std::string& scenario, std::uint64_t seed,
                       const std::string& digest) {
  const char* path = std::getenv("SNIPE_CHAOS_DIGEST_LOG");
  if (path == nullptr || *path == '\0') return;
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : digest) {
    h ^= c;
    h *= 1099511628211ull;
  }
  if (std::FILE* f = std::fopen(path, "a")) {
    std::fprintf(f, "%llu %s %016llx\n", static_cast<unsigned long long>(seed),
                 scenario.c_str(), static_cast<unsigned long long>(h));
    std::fclose(f);
  }
}

/// Snapshot value of one counter-like metric in the global registry
/// (summed over live sources and retained totals); 0 when absent.  Chaos
/// tests compare *deltas* around a scenario because the registry is
/// process-global and earlier tests leave retained totals behind.
inline double metric_value(const std::string& name) {
  for (const auto& m : obs::MetricsRegistry::global().snapshot())
    if (m.name == name) return m.value;
  return 0;
}

/// Records every delivery for one receiving endpoint and checks the
/// per-peer-pair invariants: nothing lost, nothing duplicated, nothing
/// reordered, every payload byte-identical to what the sender queued.
struct DeliveryLedger {
  std::map<std::string, std::vector<Bytes>> sent;      ///< by sender host
  std::map<std::string, std::vector<Bytes>> received;  ///< by sender host

  void expect_sent(const std::string& from, Bytes payload) {
    sent[from].push_back(std::move(payload));
  }
  void on_deliver(const std::string& from, Bytes payload) {
    received[from].push_back(std::move(payload));
  }
  void on_deliver(const std::string& from, const Payload& payload) {
    received[from].push_back(payload.to_bytes());
  }

  /// True when every sent message arrived exactly once, in order, intact.
  /// On mismatch returns false and fills `why`.
  bool intact(std::string* why) const {
    for (const auto& [from, msgs] : sent) {
      auto it = received.find(from);
      std::size_t got = it == received.end() ? 0 : it->second.size();
      if (got != msgs.size()) {
        *why = "from " + from + ": sent " + std::to_string(msgs.size()) + ", delivered " +
               std::to_string(got);
        return false;
      }
      for (std::size_t i = 0; i < msgs.size(); ++i) {
        if (it->second[i] != msgs[i]) {
          *why = "from " + from + ": message " + std::to_string(i) +
                 " corrupted or misordered";
          return false;
        }
      }
    }
    for (const auto& [from, msgs] : received) {
      if (!sent.count(from) && !msgs.empty()) {
        *why = "unexpected deliveries from " + from;
        return false;
      }
    }
    return true;
  }
};

}  // namespace snipe::chaos
