// Tests for the observability subsystem (src/obs/): metrics registry
// semantics (counters, gauges, histograms, pull sources with retained
// totals), the virtual-time tracer (ring buffer, spans, clock sources) and
// the Chrome trace_event JSON export — including parsing the export back
// with a small JSON parser to prove it is valid JSON, and a simulated
// multi-component run that produces a trace with transport, rcds and
// daemon categories.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "daemon/daemon.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rcds/server.hpp"
#include "transport/srudp.hpp"

namespace snipe::obs {
namespace {

// ---------- minimal JSON parser (validation + cat extraction) ----------

/// Recursive-descent JSON syntax checker.  While walking, it collects every
/// string value keyed "cat" so tests can verify the exported categories.
struct JsonParser {
  const std::string& s;
  std::size_t i = 0;
  std::set<std::string> cats;

  explicit JsonParser(const std::string& text) : s(text) {}

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r'))
      ++i;
  }
  bool lit(const char* word) {
    std::size_t n = std::string(word).size();
    if (s.compare(i, n, word) != 0) return false;
    i += n;
    return true;
  }
  bool string_lit(std::string* out = nullptr) {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    std::string value;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return false;
        switch (s[i]) {
          case '"': value += '"'; break;
          case '\\': value += '\\'; break;
          case '/': value += '/'; break;
          case 'b': case 'f': case 'n': case 'r': case 't': value += '?'; break;
          case 'u': {
            for (int k = 0; k < 4; ++k) {
              ++i;
              if (i >= s.size() || !std::isxdigit(static_cast<unsigned char>(s[i])))
                return false;
            }
            value += '?';
            break;
          }
          default: return false;
        }
        ++i;
      } else {
        if (static_cast<unsigned char>(s[i]) < 0x20) return false;  // raw control char
        value += s[i++];
      }
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    if (out != nullptr) *out = std::move(value);
    return true;
  }
  bool number() {
    std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) return false;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    if (i < s.size() && s[i] == '.') {
      ++i;
      if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) return false;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) return false;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    }
    return i > start;
  }
  bool object() {
    if (s[i] != '{') return false;
    ++i;
    ws();
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    while (true) {
      ws();
      std::string key;
      if (!string_lit(&key)) return false;
      ws();
      if (i >= s.size() || s[i] != ':') return false;
      ++i;
      ws();
      if (key == "cat") {
        std::string cat;
        if (!string_lit(&cat)) return false;
        cats.insert(cat);
      } else if (!value()) {
        return false;
      }
      ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    if (i >= s.size() || s[i] != '}') return false;
    ++i;
    return true;
  }
  bool array() {
    if (s[i] != '[') return false;
    ++i;
    ws();
    if (i < s.size() && s[i] == ']') {
      ++i;
      return true;
    }
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    if (i >= s.size() || s[i] != ']') return false;
    ++i;
    return true;
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_lit();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }
  /// Parses the whole document (no trailing garbage allowed).
  bool parse() {
    if (!value()) return false;
    ws();
    return i == s.size();
  }
};

TEST(JsonParserSelfTest, AcceptsAndRejects) {
  std::string good = R"({"a": [1, -2.5, 3e4, "x\n", true, null], "cat": "t"})";
  JsonParser p(good);
  EXPECT_TRUE(p.parse());
  EXPECT_EQ(p.cats, std::set<std::string>{"t"});
  for (const char* bad : {"{", "[1,]", "{\"a\":}", "12garbage", "\"unterminated"}) {
    std::string owned(bad);  // JsonParser holds a reference, not a copy
    JsonParser q{owned};
    EXPECT_FALSE(q.parse()) << bad;
  }
}

// ---------- metrics registry ----------

TEST(Metrics, CellBehavesLikePlainCounter) {
  Cell c;
  EXPECT_EQ(c, 0u);
  ++c;
  c += 4;
  EXPECT_EQ(c, 5u);
  Cell copy = c;  // copyable value type (stats() returns struct copies)
  EXPECT_EQ(copy, 5u);
  EXPECT_EQ(std::uint64_t{c} + 1, 6u);
}

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  auto& c = reg.counter("x.count");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(&reg.counter("x.count"), &c);  // same name, same instrument

  auto& g = reg.gauge("x.level");
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Metrics, DisabledRegistryIsANoOp) {
  MetricsRegistry reg;
  auto& c = reg.counter("x");
  auto& h = reg.histogram("h");
  reg.set_enabled(false);
  c.inc(100);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  reg.set_enabled(true);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(Metrics, HistogramCountsSumsAndQuantiles) {
  MetricsRegistry reg;
  std::vector<double> bounds;
  for (int b = 10; b <= 100; b += 10) bounds.push_back(b);
  auto& h = reg.histogram("lat", bounds);
  double sum = 0;
  for (int v = 1; v <= 100; ++v) {
    h.observe(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  // Uniform 1..100 against decade buckets: quantiles land within one
  // bucket's width of the exact value.
  EXPECT_NEAR(h.quantile(0.50), 50.0, 10.0);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 10.0);
  EXPECT_LE(h.quantile(0.50), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
}

TEST(Metrics, HistogramOverflowBucketCatchesTail) {
  MetricsRegistry reg;
  auto& h = reg.histogram("big", {1.0, 2.0});
  h.observe(1000.0);  // beyond every bound -> +inf bucket
  EXPECT_EQ(h.count(), 1u);
  // The quantile can only report the last finite bound as a floor.
  EXPECT_GE(h.quantile(0.5), 2.0);
}

TEST(Metrics, SourcesAggregateAcrossInstancesAndRetainOnDeath) {
  MetricsRegistry reg;
  Cell a, b;
  a += 7;
  b += 5;
  auto group_a = std::make_unique<SourceGroup>();
  SourceGroup group_b;
  group_a->add(reg, "comp.events", [&a] { return a.v; });
  group_b.add(reg, "comp.events", [&b] { return b.v; });

  auto find = [](const Snapshot& snap, const std::string& name) -> const MetricValue* {
    for (const auto& m : snap)
      if (m.name == name) return &m;
    return nullptr;
  };
  Snapshot snap = reg.snapshot();  // keep alive while `find` results are read
  auto* live = find(snap, "comp.events");
  ASSERT_NE(live, nullptr);
  EXPECT_DOUBLE_EQ(live->value, 12.0);  // both instances summed

  // Killing one instance folds its final value into the retained total.
  group_a.reset();
  b += 1;
  snap = reg.snapshot();
  auto* after = find(snap, "comp.events");
  ASSERT_NE(after, nullptr);
  EXPECT_DOUBLE_EQ(after->value, 13.0);  // 7 retained + 6 live

  // reset() clears the retained totals but not live sources.
  reg.reset();
  snap = reg.snapshot();
  auto* cleared = find(snap, "comp.events");
  ASSERT_NE(cleared, nullptr);
  EXPECT_DOUBLE_EQ(cleared->value, 6.0);
}

TEST(Metrics, ResetZeroesInstruments) {
  MetricsRegistry reg;
  reg.counter("c").inc(9);
  reg.gauge("g").set(3);
  reg.histogram("h").observe(1.0);
  reg.reset();
  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
  EXPECT_EQ(reg.histogram("h").count(), 0u);
}

TEST(Metrics, FormatTextListsEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("srudp.retransmits").inc(3);
  reg.gauge("rm.live_hosts").set(4);
  reg.histogram("srudp.rtt_ms").observe(2.5);
  std::string text = reg.format_text();
  EXPECT_NE(text.find("srudp.retransmits"), std::string::npos);
  EXPECT_NE(text.find("rm.live_hosts"), std::string::npos);
  EXPECT_NE(text.find("srudp.rtt_ms"), std::string::npos);
  EXPECT_NE(text.find("p95"), std::string::npos);
}

// ---------- tracer ----------

TEST(Trace, RingBufferWrapsAndCountsDrops) {
  Tracer t(8);
  for (int n = 0; n < 20; ++n)
    t.instant("test", "e" + std::to_string(n));
  auto events = t.events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(t.dropped(), 12u);
  // Oldest surviving event is #12; order is preserved.
  for (int n = 0; n < 8; ++n)
    EXPECT_EQ(events[n].name, "e" + std::to_string(12 + n));
  t.clear();
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Trace, SpansRecordStartAndDuration) {
  Tracer t;
  std::int64_t now = 0;
  t.set_clock([&now] { return now; });
  now = 100;
  SpanId span = t.begin_span("transport", "srudp.failover");
  ASSERT_NE(span, 0u);
  now = 350;
  t.end_span(span, {{"route", "eth"}});
  auto events = t.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::complete);
  EXPECT_EQ(events[0].ts, 100);
  EXPECT_EQ(events[0].dur, 250);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "route");

  // Ending an unknown/null span is harmless.
  t.end_span(0);
  t.end_span(9999);
  EXPECT_EQ(t.events().size(), 1u);
}

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer t;
  t.set_enabled(false);
  t.instant("c", "n");
  EXPECT_EQ(t.begin_span("c", "s"), 0u);
  EXPECT_TRUE(t.events().empty());
  t.set_enabled(true);
  t.instant("c", "n");
  EXPECT_EQ(t.events().size(), 1u);
}

TEST(Trace, VirtualClockVsWallClockStamping) {
  Tracer t;
  t.set_clock([] { return std::int64_t{42}; });
  t.instant("c", "virtual");
  EXPECT_EQ(t.events().back().ts, 42);

  t.set_clock(nullptr);  // falls back to wall time since process start
  t.instant("c", "wall1");
  std::int64_t w1 = t.events().back().ts;
  t.instant("c", "wall2");
  std::int64_t w2 = t.events().back().ts;
  EXPECT_GE(w1, 0);
  EXPECT_GE(w2, w1);  // monotonic
}

TEST(Trace, ChromeJsonIsValidAndCarriesEvents) {
  Tracer t;
  std::int64_t now = 1'000'000;  // 1 ms
  t.set_clock([&now] { return now; });
  t.instant("transport", "srudp.route_switch", {{"peer", "b:7002"}, {"q", "a\"b\\c\n"}});
  SpanId s = t.begin_span("rm", "rm.spawn");
  now += 2'500'000;
  t.end_span(s);
  std::string json = t.chrome_json();

  JsonParser parser(json);
  ASSERT_TRUE(parser.parse()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("srudp.route_switch"), std::string::npos);
  EXPECT_TRUE(parser.cats.count("transport"));
  EXPECT_TRUE(parser.cats.count("rm"));
  // Instants carry the Chrome scope field; spans a duration in µs.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2500"), std::string::npos);
}

// ---------- end-to-end: a simulated run exports a multi-category trace ----------

TEST(Trace, SimulatedRunExportsMultiCategoryChromeTrace) {
  auto& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.clear();
  MetricsRegistry::global().set_enabled(true);
  MetricsRegistry::global().reset();

  simnet::World world(991);
  world.create_network("lan", simnet::ethernet100());
  world.create_network("atm", simnet::atm155());
  for (const char* n : {"rc", "node", "a", "b"})
    world.attach(world.create_host(n), *world.network("lan"));
  world.attach(*world.host("a"), *world.network("atm"));
  world.attach(*world.host("b"), *world.network("atm"));

  // rcds: a registry (its metadata applies emit "rcds" instants).
  rcds::RcServer rc(*world.host("rc"));
  // daemon: a spawned task's lifecycle emits "daemon" task.* instants.
  daemon::SnipeDaemon d(*world.host("node"), {rc.address()});
  d.register_program("noop", [](const daemon::SpawnRequest&, daemon::TaskHandle&)
                                 -> Result<std::unique_ptr<daemon::ManagedTask>> {
    class Noop final : public daemon::ManagedTask {
     public:
      void start() override {}
      void kill() override {}
    };
    return std::unique_ptr<daemon::ManagedTask>(new Noop());
  });
  world.engine().run_for(duration::seconds(1));
  transport::RpcEndpoint spawner(*world.host("rc"), 9100);
  daemon::SpawnRequest req;
  req.program = "noop";
  req.name = "traced-task";
  bool spawned = false;
  spawner.call(d.address(), daemon::tags::kSpawn, req.encode(),
               [&](Result<Bytes> r) { spawned = r.ok(); });
  world.engine().run();
  ASSERT_TRUE(spawned);

  // transport: SRUDP stream over ATM, then a silent NIC failure forces a
  // route switch to the LAN ("transport" instants + a failover span).
  transport::SrudpEndpoint tx(*world.host("a"), 7001), rx(*world.host("b"), 7002);
  int delivered = 0;
  rx.set_handler([&](const simnet::Address&, Payload) { ++delivered; });
  for (int n = 0; n < 50; ++n) tx.send(rx.address(), Bytes(32'768, 0x5a));
  world.engine().run_for(duration::milliseconds(10));
  world.host("b")->nic_on("atm")->set_up(false);
  world.engine().run();
  ASSERT_EQ(delivered, 50);
  EXPECT_GE(tx.stats().route_switches, 1u);

  // The trace covers at least three component categories.
  std::set<std::string> cats;
  for (const auto& e : tracer.events()) cats.insert(e.cat);
  EXPECT_TRUE(cats.count("transport"));
  EXPECT_TRUE(cats.count("rcds"));
  EXPECT_TRUE(cats.count("daemon"));

  // Export, read back, parse: valid JSON with the same categories.
  std::string path = ::testing::TempDir() + "/snipe_obs_trace.json";
  ASSERT_TRUE(tracer.write_chrome_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string json = buffer.str();
  JsonParser parser(json);
  ASSERT_TRUE(parser.parse());
  EXPECT_GE(parser.cats.size(), 3u);
  EXPECT_TRUE(parser.cats.count("transport"));
  EXPECT_TRUE(parser.cats.count("rcds"));
  EXPECT_TRUE(parser.cats.count("daemon"));

  // The registry saw the same run: fleet totals from pull sources.
  auto snapshot = MetricsRegistry::global().snapshot();
  bool saw_sent = false, saw_rtt = false;
  for (const auto& m : snapshot) {
    if (m.name == "srudp.messages_sent" && m.value >= 50) saw_sent = true;
    if (m.name == "srudp.rtt_ms" && m.count > 0) saw_rtt = true;
  }
  EXPECT_TRUE(saw_sent);
  EXPECT_TRUE(saw_rtt);
}

// ---------- flow events ----------

TEST(Trace, FlowEventsCarryPhaseAndIdIntoChromeJson) {
  Tracer t;
  t.set_clock([] { return std::int64_t{1'000}; });
  // Flow recording is off by default: the hot-path guard callers check.
  EXPECT_FALSE(t.flow_enabled());
  t.flow(TraceEvent::Phase::flow_start, "flow", "srudp.send", 0xabc);
  EXPECT_TRUE(t.events().empty());

  t.set_flow_enabled(true);
  t.flow(TraceEvent::Phase::flow_start, "flow", "srudp.send", 0xabc, {{"msg", "1"}});
  t.flow(TraceEvent::Phase::flow_step, "flow", "srudp.tx", 0xabc);
  t.flow(TraceEvent::Phase::flow_end, "flow", "srudp.deliver", 0xabc);
  t.set_flow_enabled(false);

  auto events = t.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::flow_start);
  EXPECT_EQ(events[0].id, 0xabcu);
  EXPECT_EQ(events[2].phase, TraceEvent::Phase::flow_end);

  std::string json = t.chrome_json();
  JsonParser parser(json);
  ASSERT_TRUE(parser.parse()) << json;
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0xabc\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);  // flow_end binding
}

TEST(Trace, FlowRespectsMasterEnableToo) {
  Tracer t;
  t.set_flow_enabled(true);
  t.set_enabled(false);
  t.flow(TraceEvent::Phase::flow_step, "flow", "x", 7);
  EXPECT_TRUE(t.events().empty());
}

// ---------- flight recorder ----------

TEST(Flight, RingWrapsOldestFirstAndCountsDrops) {
  FlightRecorder f(4);
  for (int n = 0; n < 10; ++n)
    f.record("a", "test", "e" + std::to_string(n));
  auto events = f.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(f.dropped(), 6u);
  for (int n = 0; n < 4; ++n) EXPECT_EQ(events[n].what, "e" + std::to_string(6 + n));
  f.clear();
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.dropped(), 0u);
}

TEST(Flight, HostFilterKeepsWorldLevelEvents) {
  FlightRecorder f(16);
  f.record("a", "srudp", "rto", "peer=b");
  f.record("b", "srudp", "rto", "peer=a");
  f.record("", "fault", "partition.start", "groups=[a][b]");
  EXPECT_EQ(f.events().size(), 3u);
  auto a_events = f.events("a");
  ASSERT_EQ(a_events.size(), 2u);  // a's own + the world-level fault
  EXPECT_EQ(a_events[0].host, "a");
  EXPECT_EQ(a_events[1].cat, "fault");

  std::string dump = f.dump("b");
  EXPECT_NE(dump.find("srudp/rto"), std::string::npos);
  EXPECT_NE(dump.find("fault/partition.start"), std::string::npos);
  EXPECT_EQ(dump.find("peer=b"), std::string::npos);  // a's event filtered out
}

TEST(Flight, DumpSaysSoWhenEmptyAndWhenDisabled) {
  FlightRecorder f(8);
  EXPECT_NE(f.dump().find("empty"), std::string::npos);
  f.record("a", "c", "w");
  EXPECT_NE(f.dump("ghost").find("no flight events"), std::string::npos);
  f.set_enabled(false);
  f.record("a", "c", "ignored");
  EXPECT_EQ(f.size(), 1u);
  f.set_enabled(true);
}

TEST(Flight, TimestampsComeFromTraceClock) {
  auto& tracer = Tracer::global();
  tracer.set_clock([] { return std::int64_t{123'456'789}; });
  FlightRecorder f(8);
  f.record("a", "c", "w");
  tracer.set_clock(nullptr);
  ASSERT_EQ(f.events().size(), 1u);
  EXPECT_EQ(f.events()[0].ts, 123'456'789);
}

TEST(Flight, CapacityIsConfigurableAndResizeClears) {
  FlightRecorder f(3);
  EXPECT_EQ(f.capacity(), 3u);
  for (int n = 0; n < 5; ++n) f.record("a", "test", "e" + std::to_string(n));
  EXPECT_EQ(f.size(), 3u);
  EXPECT_EQ(f.dropped(), 2u);
  EXPECT_EQ(f.total_recorded(), 5u);
  auto events = f.events();
  ASSERT_EQ(events.size(), 3u);  // oldest-first survivors: e2 e3 e4
  for (int n = 0; n < 3; ++n) EXPECT_EQ(events[n].what, "e" + std::to_string(2 + n));

  // Growing (or shrinking) the ring restarts it: no stale tail, no carried
  // dropped count — the telemetry cursor (total_recorded) restarts too.
  f.set_capacity(8);
  EXPECT_EQ(f.capacity(), 8u);
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.dropped(), 0u);
  EXPECT_EQ(f.total_recorded(), 0u);
  for (int n = 0; n < 10; ++n) f.record("a", "test", "f" + std::to_string(n));
  events = f.events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().what, "f2");
  EXPECT_EQ(events.back().what, "f9");
  EXPECT_EQ(f.total_recorded(), 10u);

  // Degenerate capacities clamp to 1 rather than dividing by zero.
  f.set_capacity(0);
  EXPECT_EQ(f.capacity(), 1u);
  f.record("a", "test", "only");
  f.record("a", "test", "newest");
  ASSERT_EQ(f.events().size(), 1u);
  EXPECT_EQ(f.events()[0].what, "newest");
  FlightRecorder zero(0);
  EXPECT_EQ(zero.capacity(), 1u);
}

TEST(Flight, CapacityEnvParsing) {
  // The exact contract global() applies to SNIPE_FLIGHT_CAPACITY, testable
  // without racing the singleton's one-shot env read.
  EXPECT_EQ(FlightRecorder::capacity_from_env(nullptr), FlightRecorder::kDefaultCapacity);
  EXPECT_EQ(FlightRecorder::capacity_from_env(""), FlightRecorder::kDefaultCapacity);
  EXPECT_EQ(FlightRecorder::capacity_from_env("bogus"), FlightRecorder::kDefaultCapacity);
  EXPECT_EQ(FlightRecorder::capacity_from_env("0"), FlightRecorder::kDefaultCapacity);
  EXPECT_EQ(FlightRecorder::capacity_from_env("512"), 512u);
  EXPECT_EQ(FlightRecorder::capacity_from_env("0x40"), 64u);  // any strtoull base
}

TEST(FlightDeathTest, AbortHandlerDumpsRecorder) {
  // The sanitizer/assert path: SIGABRT triggers a stderr dump of the
  // global recorder before the process dies.
  FlightRecorder::install_abort_handler();
  FlightRecorder::install_abort_handler();  // idempotent
  EXPECT_DEATH(
      {
        FlightRecorder::global().record("a", "test", "before_abort", "detail");
        std::abort();
      },
      "test/before_abort");
}

}  // namespace
}  // namespace snipe::obs
