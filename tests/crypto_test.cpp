// Unit tests for snipe_crypto: hashes against RFC vectors, bignum algebra,
// RSA sign/verify, and the §4 certificate / trust-store flows.
#include <gtest/gtest.h>

#include "crypto/bignum.hpp"
#include "crypto/hash.hpp"
#include "crypto/identity.hpp"
#include "crypto/rsa.hpp"

namespace snipe::crypto {
namespace {

// ---- MD5: RFC 1321 appendix A.5 test suite ----

TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(digest_hex(md5(std::string(""))), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(digest_hex(md5(std::string("a"))), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(digest_hex(md5(std::string("abc"))), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(digest_hex(md5(std::string("message digest"))),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(digest_hex(md5(std::string("abcdefghijklmnopqrstuvwxyz"))),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(digest_hex(md5(std::string(
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"))),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(digest_hex(md5(std::string("1234567890123456789012345678901234567890"
                                       "1234567890123456789012345678901234567890"))),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot) {
  std::string text = "The quick brown fox jumps over the lazy dog";
  Md5 h;
  for (char c : text) h.update(std::string(1, c));
  EXPECT_EQ(digest_hex(h.finish()), digest_hex(md5(text)));
}

// ---- SHA-256: FIPS 180-4 / NIST vectors ----

TEST(Sha256, NistVectors) {
  EXPECT_EQ(digest_hex(sha256(std::string(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(digest_hex(sha256(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(digest_hex(sha256(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, BoundaryLengths) {
  // Padding boundary cases: 55, 56, 63, 64, 65 bytes.
  for (std::size_t n : {55u, 56u, 63u, 64u, 65u}) {
    std::string data(n, 'x');
    Sha256 incremental;
    incremental.update(data.substr(0, n / 2));
    incremental.update(data.substr(n / 2));
    EXPECT_EQ(digest_hex(incremental.finish()), digest_hex(sha256(data))) << n;
  }
}

// ---- HMAC-SHA256: RFC 4231 vectors ----

TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  auto mac = hmac_sha256(key, to_bytes("Hi There"));
  EXPECT_EQ(digest_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  auto mac = hmac_sha256(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(digest_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  Bytes key(131, 0xaa);  // RFC 4231 case 6
  auto mac = hmac_sha256(key, to_bytes("Test Using Larger Than Block-Size Key - Hash"
                                       " Key First"));
  EXPECT_EQ(digest_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// ---- BigUInt ----

TEST(BigUInt, HexRoundTrip) {
  auto v = BigUInt::from_hex("deadbeefcafebabe0123456789");
  EXPECT_EQ(v.to_hex(), "deadbeefcafebabe0123456789");
  EXPECT_EQ(BigUInt(0).to_hex(), "0");
  EXPECT_EQ(BigUInt::from_hex("000000ff").to_hex(), "ff");
}

TEST(BigUInt, BytesRoundTrip) {
  std::vector<std::uint8_t> be{0x01, 0x02, 0x03, 0x04, 0x05};
  auto v = BigUInt::from_bytes(be);
  EXPECT_EQ(v.to_bytes(), be);
  EXPECT_EQ(v.to_hex(), "102030405");
}

TEST(BigUInt, AddSubInverse) {
  auto a = BigUInt::from_hex("ffffffffffffffffffffffff");
  auto b = BigUInt::from_hex("123456789abcdef");
  auto sum = BigUInt::add(a, b);
  EXPECT_EQ(BigUInt::sub(sum, b), a);
  EXPECT_EQ(BigUInt::sub(sum, a), b);
}

TEST(BigUInt, CarryPropagation) {
  auto a = BigUInt::from_hex("ffffffff");
  EXPECT_EQ(BigUInt::add(a, BigUInt(1)).to_hex(), "100000000");
  EXPECT_EQ(BigUInt::sub(BigUInt::from_hex("100000000"), BigUInt(1)).to_hex(), "ffffffff");
}

TEST(BigUInt, MulMatchesKnownProduct) {
  auto a = BigUInt::from_hex("1234567890abcdef");
  auto b = BigUInt::from_hex("fedcba0987654321");
  // Computed independently: 0x1234567890abcdef * 0xfedcba0987654321
  EXPECT_EQ(BigUInt::mul(a, b).to_hex(), "121fa000a3723a57c24a442fe55618cf");
}

TEST(BigUInt, DivModIdentity) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    auto a = BigUInt::random_bits(rng, 200);
    auto b = BigUInt::random_bits(rng, 60 + static_cast<std::size_t>(i));
    BigUInt q, r;
    BigUInt::divmod(a, b, q, r);
    EXPECT_LT(BigUInt::compare(r, b), 0);
    EXPECT_EQ(BigUInt::add(BigUInt::mul(q, b), r), a);
  }
}

TEST(BigUInt, Shifts) {
  auto v = BigUInt::from_hex("1");
  EXPECT_EQ(v.shifted_left(100).shifted_right(100), v);
  EXPECT_EQ(BigUInt::from_hex("ff00").shifted_right(8).to_hex(), "ff");
  EXPECT_EQ(BigUInt::from_hex("ff").shifted_left(4).to_hex(), "ff0");
}

TEST(BigUInt, BitLength) {
  EXPECT_EQ(BigUInt(0).bit_length(), 0u);
  EXPECT_EQ(BigUInt(1).bit_length(), 1u);
  EXPECT_EQ(BigUInt(255).bit_length(), 8u);
  EXPECT_EQ(BigUInt(256).bit_length(), 9u);
  EXPECT_EQ(BigUInt::from_hex("80000000").bit_length(), 32u);
}

TEST(BigUInt, ModPowFermat) {
  // 2^(p-1) mod p == 1 for prime p.
  BigUInt p(1000003);
  EXPECT_EQ(BigUInt::mod_pow(BigUInt(2), BigUInt(1000002), p), BigUInt(1));
}

TEST(BigUInt, ModPowSmallCases) {
  EXPECT_EQ(BigUInt::mod_pow(BigUInt(3), BigUInt(4), BigUInt(7)), BigUInt(4));  // 81 mod 7
  EXPECT_EQ(BigUInt::mod_pow(BigUInt(5), BigUInt(0), BigUInt(13)), BigUInt(1));
  EXPECT_EQ(BigUInt::mod_pow(BigUInt(5), BigUInt(100), BigUInt(1)), BigUInt(0));
}

TEST(BigUInt, GcdAndInverse) {
  EXPECT_EQ(BigUInt::gcd(BigUInt(12), BigUInt(18)), BigUInt(6));
  EXPECT_EQ(BigUInt::gcd(BigUInt(17), BigUInt(31)), BigUInt(1));
  // 3 * 7 = 21 = 1 mod 10
  EXPECT_EQ(BigUInt::mod_inverse(BigUInt(3), BigUInt(10)), BigUInt(7));
  // Non-invertible.
  EXPECT_TRUE(BigUInt::mod_inverse(BigUInt(4), BigUInt(8)).is_zero());
}

TEST(BigUInt, InverseRandomized) {
  Rng rng(11);
  BigUInt m = BigUInt::random_prime(rng, 64);
  for (int i = 0; i < 20; ++i) {
    BigUInt a = BigUInt::mod(BigUInt::random_bits(rng, 60), m);
    if (a.is_zero()) continue;
    BigUInt inv = BigUInt::mod_inverse(a, m);
    EXPECT_EQ(BigUInt::mod(BigUInt::mul(a, inv), m), BigUInt(1));
  }
}

TEST(BigUInt, PrimalityKnownValues) {
  Rng rng(5);
  EXPECT_TRUE(BigUInt::is_probable_prime(BigUInt(2), rng));
  EXPECT_TRUE(BigUInt::is_probable_prime(BigUInt(65537), rng));
  EXPECT_TRUE(BigUInt::is_probable_prime(BigUInt::from_hex("fffffffb"), rng));
  EXPECT_FALSE(BigUInt::is_probable_prime(BigUInt(1), rng));
  EXPECT_FALSE(BigUInt::is_probable_prime(BigUInt(561), rng));   // Carmichael
  EXPECT_FALSE(BigUInt::is_probable_prime(BigUInt(65536), rng));
}

TEST(BigUInt, RandomPrimeHasRequestedSize) {
  Rng rng(6);
  auto p = BigUInt::random_prime(rng, 96);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(p.is_odd());
}

// ---- RSA ----

class RsaTest : public ::testing::Test {
 protected:
  static KeyPair& keys() {
    static KeyPair kp = [] {
      Rng rng(1234);
      return generate_keypair(rng, 512);
    }();
    return kp;
  }
};

TEST_F(RsaTest, SignVerifyRoundTrip) {
  auto sig = sign(keys().priv, std::string("authorize spawn on nodeB"));
  EXPECT_TRUE(verify(keys().pub, std::string("authorize spawn on nodeB"), sig));
}

TEST_F(RsaTest, TamperedMessageRejected) {
  auto sig = sign(keys().priv, std::string("grant read"));
  EXPECT_FALSE(verify(keys().pub, std::string("grant write"), sig));
}

TEST_F(RsaTest, TamperedSignatureRejected) {
  auto sig = sign(keys().priv, std::string("grant read"));
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(verify(keys().pub, std::string("grant read"), sig));
}

TEST_F(RsaTest, WrongKeyRejected) {
  Rng rng(777);
  auto other = generate_keypair(rng, 512);
  auto sig = sign(keys().priv, std::string("hello"));
  EXPECT_FALSE(verify(other.pub, std::string("hello"), sig));
}

TEST_F(RsaTest, SignatureIsModulusSized) {
  auto sig = sign(keys().priv, std::string("x"));
  EXPECT_EQ(sig.size(), (keys().pub.n.bit_length() + 7) / 8);
}

TEST_F(RsaTest, PublicKeyEncodeDecodeFingerprint) {
  auto encoded = keys().pub.encode();
  auto decoded = PublicKey::decode(encoded).value();
  EXPECT_EQ(decoded, keys().pub);
  EXPECT_EQ(decoded.fingerprint(), keys().pub.fingerprint());
  EXPECT_EQ(keys().pub.fingerprint().size(), 16u);
}

TEST_F(RsaTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(PublicKey::decode(Bytes{1, 2, 3}).ok());
}

// ---- Certificates and trust (§4) ----

class TrustTest : public ::testing::Test {
 protected:
  TrustTest() : rng_(99) {
    rm_ = Principal::create("snipe://rm.utk.edu:7300/rm", rng_);
    user_ = Principal::create("urn:snipe:user:fagg", rng_);
    host_ = Principal::create("snipe://nodeA:7201/daemon", rng_);
  }
  Rng rng_;
  Principal rm_, user_, host_;
};

TEST_F(TrustTest, CertificateIssueAndVerify) {
  auto cert = Certificate::issue(rm_, user_.uri, user_.keys.pub,
                                 {crypto::TrustPurpose::identify_user});
  EXPECT_TRUE(cert.verify_with(rm_.keys.pub));
  EXPECT_TRUE(cert.covers(TrustPurpose::identify_user));
  EXPECT_FALSE(cert.covers(TrustPurpose::identify_host));
}

TEST_F(TrustTest, CertificateEncodeDecodeRoundTrip) {
  auto cert = Certificate::issue(rm_, user_.uri, user_.keys.pub,
                                 {TrustPurpose::identify_user, TrustPurpose::sign_mobile_code});
  auto decoded = Certificate::decode(cert.encode()).value();
  EXPECT_EQ(decoded.subject, cert.subject);
  EXPECT_EQ(decoded.issuer, cert.issuer);
  EXPECT_EQ(decoded.purposes.size(), 2u);
  EXPECT_TRUE(decoded.verify_with(rm_.keys.pub));
}

TEST_F(TrustTest, TrustStoreValidatesOnlyTrustedIssuers) {
  TrustStore store;
  store.trust(rm_.uri, rm_.keys.pub, TrustPurpose::identify_user);

  auto cert = Certificate::issue(rm_, user_.uri, user_.keys.pub,
                                 {TrustPurpose::identify_user});
  EXPECT_TRUE(store.validate(cert, TrustPurpose::identify_user).ok());

  // Same issuer, untrusted purpose.
  auto host_cert = Certificate::issue(rm_, host_.uri, host_.keys.pub,
                                      {TrustPurpose::identify_host});
  EXPECT_EQ(store.validate(host_cert, TrustPurpose::identify_host).code(),
            Errc::permission_denied);
}

TEST_F(TrustTest, SelfSignedByUntrustedPartyRejected) {
  TrustStore store;
  store.trust(rm_.uri, rm_.keys.pub, TrustPurpose::identify_user);
  // The user mints their own certificate — issuer not trusted.
  auto rogue = Certificate::issue(user_, user_.uri, user_.keys.pub,
                                  {TrustPurpose::identify_user});
  EXPECT_EQ(store.validate(rogue, TrustPurpose::identify_user).code(),
            Errc::permission_denied);
}

TEST_F(TrustTest, ForgedIssuerFieldRejected) {
  TrustStore store;
  store.trust(rm_.uri, rm_.keys.pub, TrustPurpose::identify_user);
  // Signed by the user but claiming the RM as issuer: signature check
  // against the *trusted* RM key must fail.
  auto forged = Certificate::issue(user_, user_.uri, user_.keys.pub,
                                   {TrustPurpose::identify_user});
  forged.issuer = rm_.uri;
  EXPECT_EQ(store.validate(forged, TrustPurpose::identify_user).code(), Errc::corrupt);
}

TEST_F(TrustTest, SignedStatementFlow) {
  TrustStore store;
  store.trust(rm_.uri, rm_.keys.pub, TrustPurpose::identify_user);
  auto cert = Certificate::issue(rm_, user_.uri, user_.keys.pub,
                                 {TrustPurpose::identify_user});

  auto stmt = SignedStatement::make(user_, to_bytes("grant proc-7 on nodeB: cpu=10s"));
  EXPECT_TRUE(store.validate_statement(stmt, cert, TrustPurpose::identify_user).ok());

  // Tampered payload.
  auto bad = stmt;
  bad.payload.push_back('!');
  EXPECT_EQ(store.validate_statement(bad, cert, TrustPurpose::identify_user).code(),
            Errc::corrupt);

  // Certificate for a different subject.
  auto other_cert = Certificate::issue(rm_, host_.uri, host_.keys.pub,
                                       {TrustPurpose::identify_user});
  EXPECT_EQ(store.validate_statement(stmt, other_cert, TrustPurpose::identify_user).code(),
            Errc::permission_denied);
}

TEST_F(TrustTest, SignedStatementEncodeDecode) {
  auto stmt = SignedStatement::make(user_, to_bytes("payload"));
  auto decoded = SignedStatement::decode(stmt.encode()).value();
  EXPECT_EQ(decoded.signer, user_.uri);
  EXPECT_TRUE(decoded.verify_with(user_.keys.pub));
}

}  // namespace
}  // namespace snipe::crypto
