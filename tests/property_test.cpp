// Property-style parameterized sweeps over the core invariants:
//   * SRUDP delivers every message exactly once, in order, byte-identical,
//     for any (media, loss, size mix) combination;
//   * Record replica merges converge regardless of delivery order
//     (commutativity / idempotence over random histories);
//   * SVM execution is invariant under scheduling quantum;
//   * VM checkpoint/restore at *any* interruption point resumes to an
//     identical result;
//   * the engine is deterministic under a fixed seed.
#include <gtest/gtest.h>

#include <algorithm>

#include "playground/svmasm.hpp"
#include "rcds/assertion.hpp"
#include "simnet/fault.hpp"
#include "transport/srudp.hpp"
#include "transport/stream.hpp"
#include "transport/wire.hpp"

namespace snipe {
namespace {

Bytes pattern(std::size_t n, std::uint32_t seed) {
  Bytes b(n);
  std::uint32_t x = seed * 2654435761u + 1;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    b[i] = static_cast<std::uint8_t>(x >> 24);
  }
  return b;
}

// ---- SRUDP exactly-once/in-order/intact under (media, loss) sweep ----

struct SrudpCase {
  int media;      // index into bench-style media table
  int loss_pm;    // loss in per-mille
  int messages;
  std::size_t max_size;
};

class SrudpProperty : public ::testing::TestWithParam<SrudpCase> {};

simnet::MediaModel media_of(int i) {
  switch (i) {
    case 0: return simnet::ethernet100();
    case 1: return simnet::atm155();
    case 2: return simnet::wan_t3();
    default: return simnet::internet_lossy();
  }
}

TEST_P(SrudpProperty, ExactlyOnceInOrderIntact) {
  const SrudpCase& c = GetParam();
  simnet::World world(1000 + static_cast<std::uint64_t>(c.media * 100 + c.loss_pm));
  auto& net = world.create_network("net", media_of(c.media));
  net.set_extra_loss(c.loss_pm / 1000.0);
  auto& a = world.create_host("a");
  auto& b = world.create_host("b");
  world.attach(a, net);
  world.attach(b, net);
  transport::SrudpEndpoint tx(a, 7001), rx(b, 7002);

  std::vector<Bytes> received;
  rx.set_handler([&](const simnet::Address&, Payload m) { received.push_back(m.to_bytes()); });

  Rng sizes(c.media * 7919u + c.loss_pm);
  std::vector<Bytes> sent;
  for (int i = 0; i < c.messages; ++i) {
    std::size_t size = static_cast<std::size_t>(sizes.next_below(c.max_size)) + 1;
    sent.push_back(pattern(size, static_cast<std::uint32_t>(i)));
    tx.send(rx.address(), sent.back());
  }
  world.engine().run();

  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) EXPECT_EQ(received[i], sent[i]) << i;
  EXPECT_EQ(tx.stats().messages_expired, 0u);
  EXPECT_EQ(rx.stats().messages_skipped, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SrudpProperty,
    ::testing::Values(SrudpCase{0, 0, 40, 40'000}, SrudpCase{0, 50, 40, 40'000},
                      SrudpCase{0, 200, 25, 20'000}, SrudpCase{1, 0, 40, 120'000},
                      SrudpCase{1, 100, 25, 60'000}, SrudpCase{2, 10, 30, 30'000},
                      SrudpCase{2, 150, 20, 15'000}, SrudpCase{3, 100, 20, 10'000}),
    [](const ::testing::TestParamInfo<SrudpCase>& info) {
      return "media" + std::to_string(info.param.media) + "_loss" +
             std::to_string(info.param.loss_pm) + "pm";
    });

// ---- Stream (TCP-like) integrity under (media, loss) sweep ----

class StreamProperty : public ::testing::TestWithParam<SrudpCase> {};

TEST_P(StreamProperty, ByteStreamIntactInOrder) {
  const SrudpCase& c = GetParam();
  simnet::World world(2000 + static_cast<std::uint64_t>(c.media * 100 + c.loss_pm));
  auto& net = world.create_network("net", media_of(c.media));
  net.set_extra_loss(c.loss_pm / 1000.0);
  auto& a = world.create_host("a");
  auto& b = world.create_host("b");
  world.attach(a, net);
  world.attach(b, net);
  transport::StreamEndpoint client(a, 8001), server(b, 8002);
  std::vector<Bytes> received;
  std::shared_ptr<transport::StreamConnection> server_conn;
  server.listen([&](std::shared_ptr<transport::StreamConnection> conn) {
    server_conn = conn;
    conn->set_message_handler([&](Payload m) { received.push_back(m.to_bytes()); });
  });
  auto conn = client.connect(server.address());

  Rng sizes(c.media * 104729u + c.loss_pm);
  std::vector<Bytes> sent;
  for (int i = 0; i < c.messages; ++i) {
    std::size_t size = static_cast<std::size_t>(sizes.next_below(c.max_size)) + 1;
    sent.push_back(pattern(size, static_cast<std::uint32_t>(i) + 7777));
    conn->send_message(sent.back());
  }
  world.engine().run();
  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) EXPECT_EQ(received[i], sent[i]) << i;
  EXPECT_EQ(conn->unacked_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamProperty,
    ::testing::Values(SrudpCase{0, 0, 40, 40'000}, SrudpCase{0, 50, 25, 20'000},
                      SrudpCase{1, 20, 25, 60'000}, SrudpCase{2, 10, 25, 20'000},
                      SrudpCase{2, 100, 15, 10'000}),
    [](const ::testing::TestParamInfo<SrudpCase>& info) {
      return "media" + std::to_string(info.param.media) + "_loss" +
             std::to_string(info.param.loss_pm) + "pm";
    });

// ---- Record merge convergence over random histories ----

class RecordProperty : public ::testing::TestWithParam<int> {};

TEST_P(RecordProperty, MergeOrderIrrelevant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  // A random history of assertions over few names/values, from 3 origins.
  std::vector<rcds::Assertion> history;
  for (int i = 0; i < 60; ++i) {
    rcds::Assertion a;
    a.name = "k" + std::to_string(rng.next_below(4));
    a.value = "v" + std::to_string(rng.next_below(3));
    a.timestamp = static_cast<SimTime>(rng.next_below(20));
    a.origin = "s" + std::to_string(rng.next_below(3));
    a.tombstone = rng.chance(0.3);
    history.push_back(std::move(a));
  }
  rcds::Record in_order;
  for (const auto& a : history) in_order.merge(a);

  auto dump = [](const rcds::Record& r) {
    std::string out;
    for (const auto& a : r.all())
      out += a.name + "=" + a.value + "@" + std::to_string(a.timestamp) + a.origin +
             (a.tombstone ? "T" : "") + ";";
    return out;
  };
  std::string expected = dump(in_order);

  // Any permutation — including with duplicated deliveries — converges.
  for (int trial = 0; trial < 5; ++trial) {
    auto shuffled = history;
    for (std::size_t i = shuffled.size(); i > 1; --i)
      std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
    rcds::Record r;
    for (const auto& a : shuffled) {
      r.merge(a);
      if (rng.chance(0.2)) r.merge(a);  // duplicate delivery
    }
    EXPECT_EQ(dump(r), expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordProperty, ::testing::Range(1, 9));

// ---- SVM invariance under quantum and checkpoint point ----

class VmProperty : public ::testing::TestWithParam<int> {};

const char* kVmProgram = R"(
  .globals 3
  push 7
  storeg 1
loop:
  loadg 0
  loadg 1
  mul
  push 9973
  mod
  storeg 0
  loadg 0
  push 1
  add
  storeg 0
  loadg 2
  push 1
  add
  dup
  storeg 2
  push 500
  lt
  jnz loop
  loadg 0
  emit
  halt
)";

TEST_P(VmProperty, CheckpointAnywhereResumesIdentically) {
  const int interrupt_after = GetParam() * 137;  // various mid-run points
  auto program = playground::assemble(kVmProgram);
  ASSERT_TRUE(program.ok());

  playground::Vm reference(program.value(), {});
  reference.run(1'000'000);
  ASSERT_EQ(reference.status(), playground::VmStatus::halted);
  auto expected = reference.drain_output();

  playground::Vm first(program.value(), {});
  first.run(static_cast<std::uint64_t>(interrupt_after));
  auto restored = playground::Vm::restore(first.snapshot()).value();
  restored.run(1'000'000);
  EXPECT_EQ(restored.drain_output(), expected);
  EXPECT_EQ(restored.cycles_used(), reference.cycles_used());
}

TEST_P(VmProperty, QuantumInvariance) {
  const int quantum = GetParam() * 13 + 1;
  auto program = playground::assemble(kVmProgram);
  playground::Vm reference(program.value(), {});
  reference.run(1'000'000);
  playground::Vm sliced(program.value(), {});
  while (sliced.status() != playground::VmStatus::halted)
    sliced.run(static_cast<std::uint64_t>(quantum));
  EXPECT_EQ(sliced.drain_output(), reference.drain_output());
}

INSTANTIATE_TEST_SUITE_P(Points, VmProperty, ::testing::Range(1, 11));

// ---- Wire codecs: round-trip, truncation, and bit-flip fuzzing ----
//
// The decoders face untrusted bytes (any NIC can deliver garbage, and the
// fault injector corrupts datagrams on purpose), so three properties must
// hold for every codec: a round-trip is lossless, every strict prefix of a
// valid encoding fails with a clean Errc::corrupt, and arbitrary bit flips
// never crash or yield a structurally impossible packet.

using namespace transport;

// One valid encoding of every packet shape the transports emit, with sizes
// varied by `seed` so sweeps cover empty/short/multi-fragment cases.
std::vector<Bytes> valid_encodings(std::uint32_t seed) {
  Rng rng(seed);
  auto some_bytes = [&](std::size_t max) {
    return pattern(rng.next_below(max + 1), seed * 31 + 7);
  };
  std::vector<Bytes> out;

  DataPacket data;
  data.msg_id = rng.next_below(1u << 30);
  data.frag_count = static_cast<std::uint32_t>(rng.next_below(16)) + 1;
  data.frag_index = static_cast<std::uint32_t>(rng.next_below(data.frag_count));
  data.payload = some_bytes(600);
  data.total_len = static_cast<std::uint32_t>(data.payload.size()) * data.frag_count;
  if (data.frag_count > 1 && data.total_len == 0) data.total_len = 1;
  out.push_back(encode_data(7001, data).to_bytes());

  StatusPacket status;
  status.msg_id = rng.next_below(1u << 30);
  status.frag_count = static_cast<std::uint32_t>(rng.next_below(64)) + 1;
  status.bitmap = make_bitmap(status.frag_count);
  for (std::uint32_t i = 0; i < status.frag_count; ++i)
    if (rng.chance(0.5)) bitmap_set(status.bitmap, i);
  out.push_back(encode_status(7002, status).to_bytes());

  out.push_back(encode_msg_id(PacketType::msg_ack, 7003, {rng.next_below(1u << 30)}).to_bytes());
  out.push_back(encode_msg_id(PacketType::probe, 7004, {rng.next_below(1u << 30)}).to_bytes());

  for (PacketType t : {PacketType::syn, PacketType::syn_ack, PacketType::ack,
                       PacketType::seg, PacketType::fin, PacketType::rst}) {
    StreamPacket s;
    s.conn_id = static_cast<std::uint32_t>(rng.next_below(1u << 16));
    s.seq = rng.next_below(1u << 20);
    s.ack = rng.next_below(1u << 20);
    s.window = static_cast<std::uint32_t>(rng.next_below(1u << 16));
    if (t == PacketType::seg) s.payload = some_bytes(400);
    out.push_back(encode_stream(t, 8001, s).to_bytes());
  }

  McastDataPacket md;
  md.group = "grp" + std::to_string(rng.next_below(1000));
  md.msg_id = rng.next_below(1u << 30);
  md.frag_count = static_cast<std::uint32_t>(rng.next_below(8)) + 1;
  md.frag_index = static_cast<std::uint32_t>(rng.next_below(md.frag_count));
  md.payload = some_bytes(300);
  md.total_len = static_cast<std::uint32_t>(md.payload.size()) * md.frag_count;
  if (md.frag_count > 1 && md.total_len == 0) md.total_len = 1;
  out.push_back(encode_mcast_data(9001, md).to_bytes());

  McastNackPacket nack;
  nack.group = "grp";
  nack.msg_id = rng.next_below(1u << 30);
  for (std::uint64_t i = 0, n = rng.next_below(10) + 1; i < n; ++i)
    nack.missing.push_back(static_cast<std::uint32_t>(rng.next_below(64)));
  out.push_back(encode_mcast_nack(9002, nack).to_bytes());
  return out;
}

// Routes `wire` to the decoder its own head claims; returns whether that
// decoder accepted it, checking decoder-enforced invariants when it did.
bool decode_by_head(const Bytes& wire) {
  auto head = decode_head(wire);
  if (!head) return false;
  switch (head.value().type) {
    case PacketType::data: {
      auto p = decode_data(wire);
      if (!p) return false;
      EXPECT_GT(p.value().frag_count, 0u);
      EXPECT_LT(p.value().frag_index, p.value().frag_count);
      EXPECT_LE(p.value().frag_count, kMaxWireFragments);
      return true;
    }
    case PacketType::msg_ack:
    case PacketType::probe:
      return decode_msg_id(wire).ok();
    case PacketType::status: {
      auto p = decode_status(wire);
      if (!p) return false;
      EXPECT_LE(p.value().frag_count, kMaxWireFragments);
      EXPECT_GE(p.value().bitmap.size() * 8, p.value().frag_count);
      return true;
    }
    case PacketType::syn:
    case PacketType::syn_ack:
    case PacketType::ack:
    case PacketType::seg:
    case PacketType::fin:
    case PacketType::rst:
      return decode_stream(wire).ok();
    case PacketType::mdata: {
      auto p = decode_mcast_data(wire);
      if (!p) return false;
      EXPECT_GT(p.value().frag_count, 0u);
      EXPECT_LT(p.value().frag_index, p.value().frag_count);
      EXPECT_LE(p.value().frag_count, kMaxWireFragments);
      return true;
    }
    case PacketType::mnack: {
      auto p = decode_mcast_nack(wire);
      if (!p) return false;
      EXPECT_LE(p.value().missing.size(), kMaxWireFragments);
      return true;
    }
  }
  return false;
}

class WireFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WireFuzz, RoundTripIsLossless) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1013 + 1);
  auto some_bytes = [&](std::size_t max) {
    return pattern(rng.next_below(max + 1), static_cast<std::uint32_t>(GetParam()));
  };

  DataPacket data;
  data.msg_id = rng.next_below(1ull << 40);
  data.frag_count = static_cast<std::uint32_t>(rng.next_below(100)) + 1;
  data.frag_index = static_cast<std::uint32_t>(rng.next_below(data.frag_count));
  data.total_len = static_cast<std::uint32_t>(rng.next_below(1u << 20)) + 1;
  data.payload = some_bytes(2000);
  auto d = decode_data(encode_data(123, data));
  ASSERT_TRUE(d.ok()) << d.error().to_string();
  EXPECT_EQ(d.value().msg_id, data.msg_id);
  EXPECT_EQ(d.value().frag_index, data.frag_index);
  EXPECT_EQ(d.value().frag_count, data.frag_count);
  EXPECT_EQ(d.value().total_len, data.total_len);
  EXPECT_EQ(d.value().payload, data.payload);
  EXPECT_EQ(decode_head(encode_data(123, data)).value().src_port, 123);

  StatusPacket status;
  status.msg_id = rng.next_below(1ull << 40);
  status.frag_count = static_cast<std::uint32_t>(rng.next_below(500)) + 1;
  status.bitmap = make_bitmap(status.frag_count);
  for (std::uint32_t i = 0; i < status.frag_count; ++i)
    if (rng.chance(0.3)) bitmap_set(status.bitmap, i);
  auto s = decode_status(encode_status(45678, status));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().msg_id, status.msg_id);
  EXPECT_EQ(s.value().frag_count, status.frag_count);
  EXPECT_EQ(s.value().bitmap, status.bitmap);

  MsgIdPacket mid{rng.next_below(1ull << 40)};
  EXPECT_EQ(decode_msg_id(encode_msg_id(PacketType::msg_ack, 1, mid)).value().msg_id,
            mid.msg_id);
  EXPECT_EQ(decode_msg_id(encode_msg_id(PacketType::probe, 1, mid)).value().msg_id,
            mid.msg_id);

  StreamPacket seg;
  seg.conn_id = static_cast<std::uint32_t>(rng.next_below(1ull << 32));
  seg.seq = rng.next_below(1ull << 40);
  seg.ack = rng.next_below(1ull << 40);
  seg.window = static_cast<std::uint32_t>(rng.next_below(1ull << 32));
  seg.payload = some_bytes(1400);
  auto t = decode_stream(encode_stream(PacketType::seg, 9, seg));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().conn_id, seg.conn_id);
  EXPECT_EQ(t.value().seq, seg.seq);
  EXPECT_EQ(t.value().ack, seg.ack);
  EXPECT_EQ(t.value().window, seg.window);
  EXPECT_EQ(t.value().payload, seg.payload);

  McastDataPacket md;
  md.group = "multicast-group-" + std::to_string(GetParam());
  md.msg_id = rng.next_below(1ull << 40);
  md.frag_count = static_cast<std::uint32_t>(rng.next_below(50)) + 1;
  md.frag_index = static_cast<std::uint32_t>(rng.next_below(md.frag_count));
  md.total_len = static_cast<std::uint32_t>(rng.next_below(1u << 20)) + 1;
  md.payload = some_bytes(1000);
  auto m = decode_mcast_data(encode_mcast_data(77, md));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().group, md.group);
  EXPECT_EQ(m.value().msg_id, md.msg_id);
  EXPECT_EQ(m.value().frag_index, md.frag_index);
  EXPECT_EQ(m.value().frag_count, md.frag_count);
  EXPECT_EQ(m.value().total_len, md.total_len);
  EXPECT_EQ(m.value().payload, md.payload);

  McastNackPacket nack;
  nack.group = "g";
  nack.msg_id = rng.next_below(1ull << 40);
  for (std::uint64_t i = 0, n = rng.next_below(40); i < n; ++i)
    nack.missing.push_back(static_cast<std::uint32_t>(rng.next_below(1u << 20)));
  auto nk = decode_mcast_nack(encode_mcast_nack(2, nack));
  ASSERT_TRUE(nk.ok());
  EXPECT_EQ(nk.value().group, nack.group);
  EXPECT_EQ(nk.value().msg_id, nack.msg_id);
  EXPECT_EQ(nk.value().missing, nack.missing);
}

TEST_P(WireFuzz, EveryStrictPrefixFailsWithCorrupt) {
  for (const Bytes& wire : valid_encodings(static_cast<std::uint32_t>(GetParam()))) {
    ASSERT_TRUE(decode_by_head(wire));  // the full encoding must parse
    for (std::size_t len = 0; len < wire.size(); ++len) {
      Bytes prefix(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(len));
      auto head = decode_head(prefix);
      if (!head) {
        EXPECT_EQ(head.error().code, Errc::corrupt) << "prefix " << len;
        continue;
      }
      // Head intact; the type-specific decoder must reject the remainder.
      EXPECT_FALSE(decode_by_head(prefix)) << "prefix " << len << " of " << wire.size();
      switch (head.value().type) {
        case PacketType::data:
          EXPECT_EQ(decode_data(prefix).error().code, Errc::corrupt);
          break;
        case PacketType::status:
          EXPECT_EQ(decode_status(prefix).error().code, Errc::corrupt);
          break;
        case PacketType::msg_ack:
        case PacketType::probe:
          EXPECT_EQ(decode_msg_id(prefix).error().code, Errc::corrupt);
          break;
        case PacketType::mdata:
          EXPECT_EQ(decode_mcast_data(prefix).error().code, Errc::corrupt);
          break;
        case PacketType::mnack:
          EXPECT_EQ(decode_mcast_nack(prefix).error().code, Errc::corrupt);
          break;
        default:
          EXPECT_EQ(decode_stream(prefix).error().code, Errc::corrupt);
          break;
      }
    }
  }
}

TEST_P(WireFuzz, AppendedGarbageFailsWithCorrupt) {
  // A bit flip that shrinks a blob length field manifests as leftover
  // bytes after the last field; decoders must reject them rather than
  // silently accept a shortened payload.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 3);
  for (const Bytes& wire : valid_encodings(static_cast<std::uint32_t>(GetParam()))) {
    for (std::size_t extra : {std::size_t{1}, std::size_t{4}}) {
      Bytes padded = wire;
      for (std::size_t i = 0; i < extra; ++i)
        padded.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
      EXPECT_FALSE(decode_by_head(padded)) << extra << " trailing bytes accepted";
    }
  }
}

TEST_P(WireFuzz, BitFlippedPacketsNeverCrashEveryDecoder) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2477 + 13);
  simnet::FaultProfile profile;
  profile.corrupt_max_bytes = 8;
  simnet::FaultInjector injector(profile, Rng(GetParam()));
  for (const Bytes& wire : valid_encodings(static_cast<std::uint32_t>(GetParam()))) {
    for (int trial = 0; trial < 200; ++trial) {
      Bytes mangled = wire;
      if (trial % 2 == 0) {
        injector.corrupt_payload(mangled);  // the chaos layer's own mangler
      } else {
        for (std::uint64_t f = 0, n = rng.next_below(8) + 1; f < n; ++f)
          mangled[rng.next_below(mangled.size())] ^=
              static_cast<std::uint8_t>(1u << rng.next_below(8));
      }
      // Feed the mangled bytes to every decoder, not just the claimed one:
      // a flipped type byte routes packets to the "wrong" parser in real
      // runs, and none of them may crash or accept impossible structure.
      decode_by_head(mangled);
      (void)decode_data(mangled);
      (void)decode_status(mangled);
      (void)decode_msg_id(mangled);
      (void)decode_stream(mangled);
      (void)decode_mcast_data(mangled);
      (void)decode_mcast_nack(mangled);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Range(1, 9));

}  // namespace
}  // namespace snipe
