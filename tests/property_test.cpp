// Property-style parameterized sweeps over the core invariants:
//   * SRUDP delivers every message exactly once, in order, byte-identical,
//     for any (media, loss, size mix) combination;
//   * Record replica merges converge regardless of delivery order
//     (commutativity / idempotence over random histories);
//   * SVM execution is invariant under scheduling quantum;
//   * VM checkpoint/restore at *any* interruption point resumes to an
//     identical result;
//   * the engine is deterministic under a fixed seed.
#include <gtest/gtest.h>

#include <algorithm>

#include "playground/svmasm.hpp"
#include "rcds/assertion.hpp"
#include "transport/srudp.hpp"
#include "transport/stream.hpp"

namespace snipe {
namespace {

Bytes pattern(std::size_t n, std::uint32_t seed) {
  Bytes b(n);
  std::uint32_t x = seed * 2654435761u + 1;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    b[i] = static_cast<std::uint8_t>(x >> 24);
  }
  return b;
}

// ---- SRUDP exactly-once/in-order/intact under (media, loss) sweep ----

struct SrudpCase {
  int media;      // index into bench-style media table
  int loss_pm;    // loss in per-mille
  int messages;
  std::size_t max_size;
};

class SrudpProperty : public ::testing::TestWithParam<SrudpCase> {};

simnet::MediaModel media_of(int i) {
  switch (i) {
    case 0: return simnet::ethernet100();
    case 1: return simnet::atm155();
    case 2: return simnet::wan_t3();
    default: return simnet::internet_lossy();
  }
}

TEST_P(SrudpProperty, ExactlyOnceInOrderIntact) {
  const SrudpCase& c = GetParam();
  simnet::World world(1000 + static_cast<std::uint64_t>(c.media * 100 + c.loss_pm));
  auto& net = world.create_network("net", media_of(c.media));
  net.set_extra_loss(c.loss_pm / 1000.0);
  auto& a = world.create_host("a");
  auto& b = world.create_host("b");
  world.attach(a, net);
  world.attach(b, net);
  transport::SrudpEndpoint tx(a, 7001), rx(b, 7002);

  std::vector<Bytes> received;
  rx.set_handler([&](const simnet::Address&, Bytes m) { received.push_back(std::move(m)); });

  Rng sizes(c.media * 7919u + c.loss_pm);
  std::vector<Bytes> sent;
  for (int i = 0; i < c.messages; ++i) {
    std::size_t size = static_cast<std::size_t>(sizes.next_below(c.max_size)) + 1;
    sent.push_back(pattern(size, static_cast<std::uint32_t>(i)));
    tx.send(rx.address(), sent.back());
  }
  world.engine().run();

  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) EXPECT_EQ(received[i], sent[i]) << i;
  EXPECT_EQ(tx.stats().messages_expired, 0u);
  EXPECT_EQ(rx.stats().messages_skipped, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SrudpProperty,
    ::testing::Values(SrudpCase{0, 0, 40, 40'000}, SrudpCase{0, 50, 40, 40'000},
                      SrudpCase{0, 200, 25, 20'000}, SrudpCase{1, 0, 40, 120'000},
                      SrudpCase{1, 100, 25, 60'000}, SrudpCase{2, 10, 30, 30'000},
                      SrudpCase{2, 150, 20, 15'000}, SrudpCase{3, 100, 20, 10'000}),
    [](const ::testing::TestParamInfo<SrudpCase>& info) {
      return "media" + std::to_string(info.param.media) + "_loss" +
             std::to_string(info.param.loss_pm) + "pm";
    });

// ---- Stream (TCP-like) integrity under (media, loss) sweep ----

class StreamProperty : public ::testing::TestWithParam<SrudpCase> {};

TEST_P(StreamProperty, ByteStreamIntactInOrder) {
  const SrudpCase& c = GetParam();
  simnet::World world(2000 + static_cast<std::uint64_t>(c.media * 100 + c.loss_pm));
  auto& net = world.create_network("net", media_of(c.media));
  net.set_extra_loss(c.loss_pm / 1000.0);
  auto& a = world.create_host("a");
  auto& b = world.create_host("b");
  world.attach(a, net);
  world.attach(b, net);
  transport::StreamEndpoint client(a, 8001), server(b, 8002);
  std::vector<Bytes> received;
  std::shared_ptr<transport::StreamConnection> server_conn;
  server.listen([&](std::shared_ptr<transport::StreamConnection> conn) {
    server_conn = conn;
    conn->set_message_handler([&](Bytes m) { received.push_back(std::move(m)); });
  });
  auto conn = client.connect(server.address());

  Rng sizes(c.media * 104729u + c.loss_pm);
  std::vector<Bytes> sent;
  for (int i = 0; i < c.messages; ++i) {
    std::size_t size = static_cast<std::size_t>(sizes.next_below(c.max_size)) + 1;
    sent.push_back(pattern(size, static_cast<std::uint32_t>(i) + 7777));
    conn->send_message(sent.back());
  }
  world.engine().run();
  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) EXPECT_EQ(received[i], sent[i]) << i;
  EXPECT_EQ(conn->unacked_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamProperty,
    ::testing::Values(SrudpCase{0, 0, 40, 40'000}, SrudpCase{0, 50, 25, 20'000},
                      SrudpCase{1, 20, 25, 60'000}, SrudpCase{2, 10, 25, 20'000},
                      SrudpCase{2, 100, 15, 10'000}),
    [](const ::testing::TestParamInfo<SrudpCase>& info) {
      return "media" + std::to_string(info.param.media) + "_loss" +
             std::to_string(info.param.loss_pm) + "pm";
    });

// ---- Record merge convergence over random histories ----

class RecordProperty : public ::testing::TestWithParam<int> {};

TEST_P(RecordProperty, MergeOrderIrrelevant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  // A random history of assertions over few names/values, from 3 origins.
  std::vector<rcds::Assertion> history;
  for (int i = 0; i < 60; ++i) {
    rcds::Assertion a;
    a.name = "k" + std::to_string(rng.next_below(4));
    a.value = "v" + std::to_string(rng.next_below(3));
    a.timestamp = static_cast<SimTime>(rng.next_below(20));
    a.origin = "s" + std::to_string(rng.next_below(3));
    a.tombstone = rng.chance(0.3);
    history.push_back(std::move(a));
  }
  rcds::Record in_order;
  for (const auto& a : history) in_order.merge(a);

  auto dump = [](const rcds::Record& r) {
    std::string out;
    for (const auto& a : r.all())
      out += a.name + "=" + a.value + "@" + std::to_string(a.timestamp) + a.origin +
             (a.tombstone ? "T" : "") + ";";
    return out;
  };
  std::string expected = dump(in_order);

  // Any permutation — including with duplicated deliveries — converges.
  for (int trial = 0; trial < 5; ++trial) {
    auto shuffled = history;
    for (std::size_t i = shuffled.size(); i > 1; --i)
      std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
    rcds::Record r;
    for (const auto& a : shuffled) {
      r.merge(a);
      if (rng.chance(0.2)) r.merge(a);  // duplicate delivery
    }
    EXPECT_EQ(dump(r), expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordProperty, ::testing::Range(1, 9));

// ---- SVM invariance under quantum and checkpoint point ----

class VmProperty : public ::testing::TestWithParam<int> {};

const char* kVmProgram = R"(
  .globals 3
  push 7
  storeg 1
loop:
  loadg 0
  loadg 1
  mul
  push 9973
  mod
  storeg 0
  loadg 0
  push 1
  add
  storeg 0
  loadg 2
  push 1
  add
  dup
  storeg 2
  push 500
  lt
  jnz loop
  loadg 0
  emit
  halt
)";

TEST_P(VmProperty, CheckpointAnywhereResumesIdentically) {
  const int interrupt_after = GetParam() * 137;  // various mid-run points
  auto program = playground::assemble(kVmProgram);
  ASSERT_TRUE(program.ok());

  playground::Vm reference(program.value(), {});
  reference.run(1'000'000);
  ASSERT_EQ(reference.status(), playground::VmStatus::halted);
  auto expected = reference.drain_output();

  playground::Vm first(program.value(), {});
  first.run(static_cast<std::uint64_t>(interrupt_after));
  auto restored = playground::Vm::restore(first.snapshot()).value();
  restored.run(1'000'000);
  EXPECT_EQ(restored.drain_output(), expected);
  EXPECT_EQ(restored.cycles_used(), reference.cycles_used());
}

TEST_P(VmProperty, QuantumInvariance) {
  const int quantum = GetParam() * 13 + 1;
  auto program = playground::assemble(kVmProgram);
  playground::Vm reference(program.value(), {});
  reference.run(1'000'000);
  playground::Vm sliced(program.value(), {});
  while (sliced.status() != playground::VmStatus::halted)
    sliced.run(static_cast<std::uint64_t>(quantum));
  EXPECT_EQ(sliced.drain_output(), reference.drain_output());
}

INSTANTIATE_TEST_SUITE_P(Points, VmProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace snipe
