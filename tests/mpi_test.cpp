// Tests for the mini-MPI, PVM-lite and the PVMPI / MPI_Connect bridges.
#include <gtest/gtest.h>

#include <map>

#include "mpi/bridge.hpp"
#include "mpi/mpi.hpp"
#include "mpi/pvm.hpp"
#include "rcds/server.hpp"

namespace snipe::mpi {
namespace {

using simnet::Address;
using simnet::World;

/// Builds one simulated MPP: `n` nodes on a private myrinet fabric, with a
/// front-end node also attached to the WAN.
std::vector<simnet::Host*> make_mpp(World& world, const std::string& name, int n) {
  auto& fabric = world.create_network(name + "-fabric", simnet::myrinet());
  std::vector<simnet::Host*> hosts;
  for (int i = 0; i < n; ++i) {
    auto& h = world.create_host(name + "-n" + std::to_string(i));
    world.attach(h, fabric);
    if (world.network("wan") != nullptr) world.attach(h, *world.network("wan"));
    hosts.push_back(&h);
  }
  return hosts;
}

struct MpiFixture : ::testing::Test {
  MpiFixture() : world(101) {
    world.create_network("wan", simnet::wan_t3());
    hosts = make_mpp(world, "mppA", 4);
    app = std::make_unique<MpiWorld>("appA", hosts);
  }
  World world;
  std::vector<simnet::Host*> hosts;
  std::unique_ptr<MpiWorld> app;
};

TEST_F(MpiFixture, PointToPointSendRecv) {
  std::vector<std::string> got;
  app->rank(1).recv(0, 5, [&](MpiMessage m) {
    got.push_back(to_string(m.data));
    EXPECT_EQ(m.source, 0);
    EXPECT_EQ(m.tag, 5);
  });
  app->rank(0).send(1, 5, to_bytes("payload"));
  world.engine().run();
  EXPECT_EQ(got, (std::vector<std::string>{"payload"}));
}

TEST_F(MpiFixture, UnexpectedMessagesQueueUntilMatched) {
  app->rank(0).send(1, 9, to_bytes("early"));
  world.engine().run();  // message arrives before any recv is posted
  std::string got;
  app->rank(1).recv(0, 9, [&](MpiMessage m) { got = to_string(m.data); });
  EXPECT_EQ(got, "early");  // matched synchronously from the queue
}

TEST_F(MpiFixture, TagAndSourceMatching) {
  std::vector<int> order;
  app->rank(3).recv(kAnySource, 2, [&](MpiMessage) { order.push_back(2); });
  app->rank(3).recv(kAnySource, 1, [&](MpiMessage) { order.push_back(1); });
  app->rank(0).send(3, 1, {});
  app->rank(1).send(3, 2, {});
  world.engine().run();
  ASSERT_EQ(order.size(), 2u);
  // Each recv matched its own tag regardless of arrival order.
  EXPECT_NE(order[0], order[1]);
}

TEST_F(MpiFixture, WildcardReceive) {
  int from = -1;
  app->rank(2).recv(kAnySource, kAnyTag, [&](MpiMessage m) { from = m.source; });
  app->rank(3).send(2, 77, {});
  world.engine().run();
  EXPECT_EQ(from, 3);
}

TEST_F(MpiFixture, BarrierReleasesEveryoneTogether) {
  int released = 0;
  for (int r = 0; r < app->size(); ++r)
    app->rank(r).barrier([&] { ++released; });
  world.engine().run();
  EXPECT_EQ(released, app->size());
}

TEST_F(MpiFixture, BroadcastReachesAllRanks) {
  int got = 0;
  for (int r = 0; r < app->size(); ++r) {
    app->rank(r).bcast(1, r == 1 ? to_bytes("data") : Bytes{}, [&](MpiMessage m) {
      EXPECT_EQ(to_string(m.data), "data");
      ++got;
    });
  }
  world.engine().run();
  EXPECT_EQ(got, app->size());
}

TEST_F(MpiFixture, AllReduceSum) {
  std::vector<std::int64_t> results;
  for (int r = 0; r < app->size(); ++r)
    app->rank(r).allreduce_sum(r + 1, [&](std::int64_t total) { results.push_back(total); });
  world.engine().run();
  ASSERT_EQ(results.size(), static_cast<std::size_t>(app->size()));
  for (auto total : results) EXPECT_EQ(total, 1 + 2 + 3 + 4);
}

TEST_F(MpiFixture, GatherCollectsByRank) {
  std::vector<Bytes> got;
  for (int r = 0; r < app->size(); ++r) {
    ByteWriter w;
    w.i32(r * 100);
    app->rank(r).gather(2, std::move(w).take(),
                        [&](std::vector<Bytes> parts) { got = std::move(parts); });
  }
  world.engine().run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(app->size()));
  for (int r = 0; r < app->size(); ++r) {
    ByteReader reader(got[static_cast<std::size_t>(r)]);
    EXPECT_EQ(reader.i32().value(), r * 100);
  }
}

TEST_F(MpiFixture, ScatterDistributesByRank) {
  std::vector<Bytes> pieces;
  for (int r = 0; r < app->size(); ++r) pieces.push_back(to_bytes("piece" + std::to_string(r)));
  std::map<int, std::string> got;
  for (int r = 0; r < app->size(); ++r) {
    app->rank(r).scatter(1, r == 1 ? pieces : std::vector<Bytes>{},
                         [&, r](Bytes piece) { got[r] = to_string(piece); });
  }
  world.engine().run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(app->size()));
  for (int r = 0; r < app->size(); ++r) EXPECT_EQ(got[r], "piece" + std::to_string(r));
}

// ---- PVM-lite ----

struct PvmFixture : ::testing::Test {
  PvmFixture() : world(103) {
    world.create_network("wan", simnet::wan_t3());
    auto& a = world.create_host("siteA");
    auto& b = world.create_host("siteB");
    world.attach(a, *world.network("wan"));
    world.attach(b, *world.network("wan"));
    master = std::make_unique<pvm::PvmDaemon>(a);
    slave = std::make_unique<pvm::PvmDaemon>(b, master->address());
    world.engine().run();
  }
  World world;
  std::unique_ptr<pvm::PvmDaemon> master, slave;
};

TEST_F(PvmFixture, SlaveJoinsVirtualMachine) {
  EXPECT_TRUE(master->is_master());
  EXPECT_FALSE(slave->is_master());
  EXPECT_EQ(slave->daemon_index(), 1);
}

TEST_F(PvmFixture, TasksEnrollAndGetDistinctTids) {
  Result<int> tid1(Errc::state_error, "unset"), tid2(Errc::state_error, "unset");
  pvm::PvmTask t1(*world.host("siteA"), *master, [&](Result<int> r) { tid1 = r; });
  pvm::PvmTask t2(*world.host("siteB"), *slave, [&](Result<int> r) { tid2 = r; });
  world.engine().run();
  ASSERT_TRUE(tid1.ok());
  ASSERT_TRUE(tid2.ok());
  EXPECT_NE(tid1.value(), tid2.value());
  EXPECT_EQ(tid1.value() >> 16, 0);  // daemon index embedded in the tid
  EXPECT_EQ(tid2.value() >> 16, 1);
}

TEST_F(PvmFixture, CrossDaemonRoutingAndNameService) {
  pvm::PvmTask t1(*world.host("siteA"), *master, [](Result<int>) {});
  pvm::PvmTask t2(*world.host("siteB"), *slave, [](Result<int>) {});
  world.engine().run();

  t1.register_name("service-a", [](Result<void>) {});
  world.engine().run();

  std::vector<std::string> got;
  t1.set_handler([&](int, int tag, Bytes data) {
    EXPECT_EQ(tag, 4);
    got.push_back(to_string(data));
  });

  Result<int> looked_up(Errc::state_error, "unset");
  t2.lookup("service-a", [&](Result<int> r) { looked_up = r; });
  world.engine().run();
  ASSERT_TRUE(looked_up.ok());
  EXPECT_EQ(looked_up.value(), t1.tid());

  t2.send(looked_up.value(), 4, to_bytes("via daemons"));
  world.engine().run();
  EXPECT_EQ(got, (std::vector<std::string>{"via daemons"}));
  // The message went through both pvmds (the default PVM route).
  EXPECT_GE(master->stats().routed + slave->stats().routed, 2u);
}

TEST_F(PvmFixture, LookupOfUnknownNameFails) {
  pvm::PvmTask t(*world.host("siteB"), *slave, [](Result<int>) {});
  world.engine().run();
  Result<int> r(Errc::state_error, "unset");
  t.lookup("nonexistent", [&](Result<int> res) { r = res; });
  world.engine().run();
  EXPECT_EQ(r.code(), Errc::not_found);
}

// ---- Bridges: PVMPI and MPI_Connect ----

struct BridgeFixture : ::testing::Test {
  BridgeFixture() : world(105) {
    world.create_network("wan", simnet::wan_t3());
    hosts_a = make_mpp(world, "mppA", 2);
    hosts_b = make_mpp(world, "mppB", 2);
    app_a = std::make_unique<MpiWorld>("appA", hosts_a);
    app_b = std::make_unique<MpiWorld>("appB", hosts_b);

    // SNIPE registry on a separate host for MPI_Connect.
    auto& rc_host = world.create_host("rc");
    world.attach(rc_host, *world.network("wan"));
    rc = std::make_unique<rcds::RcServer>(rc_host);

    // PVM virtual machine spanning the front ends for PVMPI.
    pvmd_a = std::make_unique<pvm::PvmDaemon>(*hosts_a[0]);
    pvmd_b = std::make_unique<pvm::PvmDaemon>(*hosts_b[0], pvmd_a->address());
    world.engine().run();
  }

  World world;
  std::vector<simnet::Host*> hosts_a, hosts_b;
  std::unique_ptr<MpiWorld> app_a, app_b;
  std::unique_ptr<rcds::RcServer> rc;
  std::unique_ptr<pvm::PvmDaemon> pvmd_a, pvmd_b;
};

TEST_F(BridgeFixture, PvmpiRoundTrip) {
  int ready = 0;
  PvmpiPort port_a(app_a->rank(0), "appA", *pvmd_a,
                   [&](Result<void> r) { ready += r.ok(); });
  PvmpiPort port_b(app_b->rank(0), "appB", *pvmd_b,
                   [&](Result<void> r) { ready += r.ok(); });
  world.engine().run();
  ASSERT_EQ(ready, 2);

  std::vector<std::string> at_b;
  port_b.set_handler([&](InterMessage m) {
    EXPECT_EQ(m.src_app, "appA");
    EXPECT_EQ(m.src_rank, 0);
    EXPECT_EQ(m.tag, 3);
    at_b.push_back(to_string(m.data));
    // Reply back across the bridge.
    port_b.send("appA", 0, 4, to_bytes("pong"));
  });
  std::vector<std::string> at_a;
  port_a.set_handler([&](InterMessage m) { at_a.push_back(to_string(m.data)); });

  port_a.send("appB", 0, 3, to_bytes("ping"));
  world.engine().run();
  EXPECT_EQ(at_b, (std::vector<std::string>{"ping"}));
  EXPECT_EQ(at_a, (std::vector<std::string>{"pong"}));
}

TEST_F(BridgeFixture, MpiConnectRoundTrip) {
  int ready = 0;
  MpiConnectPort port_a(app_a->rank(0), "appA", {rc->address()},
                        [&](Result<void> r) { ready += r.ok(); });
  MpiConnectPort port_b(app_b->rank(0), "appB", {rc->address()},
                        [&](Result<void> r) { ready += r.ok(); });
  world.engine().run();
  ASSERT_EQ(ready, 2);

  std::vector<std::string> at_b, at_a;
  port_b.set_handler([&](InterMessage m) {
    at_b.push_back(to_string(m.data));
    port_b.send("appA", 0, 4, to_bytes("pong"));
  });
  port_a.set_handler([&](InterMessage m) { at_a.push_back(to_string(m.data)); });

  port_a.send("appB", 0, 3, to_bytes("ping"));
  world.engine().run();
  EXPECT_EQ(at_b, (std::vector<std::string>{"ping"}));
  EXPECT_EQ(at_a, (std::vector<std::string>{"pong"}));
}

TEST_F(BridgeFixture, MpiConnectLatencyBeatsPvmpi) {
  // §6.1: MPI_Connect "offered a slightly higher point-to-point
  // communication performance" — fewer hops (no pvmd store-and-forward).
  auto ping_pong_time = [&](InterPort& a, InterPort& b, int remote_rank) {
    int rounds = 0;
    SimTime start = world.now();
    b.set_handler([&, remote_rank](InterMessage m) {
      b.send("appA", remote_rank, 0, std::move(m.data));
    });
    a.set_handler([&, remote_rank](InterMessage m) {
      if (++rounds < 20) a.send("appB", remote_rank, 0, std::move(m.data));
    });
    a.send("appB", remote_rank, 0, Bytes(64, 0));
    world.engine().run();
    return world.now() - start;
  };

  PvmpiPort pa(app_a->rank(0), "appA", *pvmd_a, [](Result<void>) {});
  PvmpiPort pb(app_b->rank(0), "appB", *pvmd_b, [](Result<void>) {});
  world.engine().run();
  SimDuration pvmpi_time = ping_pong_time(pa, pb, 0);

  MpiConnectPort ca(app_a->rank(1), "appA", {rc->address()}, [](Result<void>) {});
  MpiConnectPort cb(app_b->rank(1), "appB", {rc->address()}, [](Result<void>) {});
  world.engine().run();
  // Rank 1's ports register under rank-1 names, so they do not collide
  // with the PVMPI test's PVM-side names.
  SimDuration connect_time = ping_pong_time(ca, cb, 1);

  EXPECT_LT(connect_time, pvmpi_time);
}

}  // namespace
}  // namespace snipe::mpi
