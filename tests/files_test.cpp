// Tests for SNIPE file servers: sink/source I/O, replication daemons,
// RC location registration, closest-replica selection, failover, and
// integrity verification.
#include <gtest/gtest.h>

#include "files/fileserver.hpp"

namespace snipe::files {
namespace {

using simnet::Address;
using simnet::World;

Bytes pattern(std::size_t n, std::uint32_t seed = 1) {
  Bytes b(n);
  std::uint32_t x = seed;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    b[i] = static_cast<std::uint8_t>(x >> 16);
  }
  return b;
}

struct FilesFixture : ::testing::Test {
  FilesFixture() : world(41) {
    world.create_network("lan", simnet::ethernet100());
    for (const char* name : {"rc", "fs1", "fs2", "app"})
      world.attach(world.create_host(name), *world.network("lan"));
    rc = std::make_unique<rcds::RcServer>(*world.host("rc"));

    FileServerConfig cfg;
    cfg.replication_factor = 2;
    fs1 = std::make_unique<FileServer>(*world.host("fs1"), replicas(), FileServer::kDefaultPort,
                                       cfg);
    fs2 = std::make_unique<FileServer>(*world.host("fs2"), replicas(), FileServer::kDefaultPort,
                                       cfg);
    fs1->set_peers({fs2->address()});
    fs2->set_peers({fs1->address()});

    app_rpc = std::make_unique<transport::RpcEndpoint>(*world.host("app"), 9200);
    client = std::make_unique<FileClient>(*app_rpc, replicas());
  }
  std::vector<Address> replicas() { return {rc->address()}; }

  World world;
  std::unique_ptr<rcds::RcServer> rc;
  std::unique_ptr<FileServer> fs1, fs2;
  std::unique_ptr<transport::RpcEndpoint> app_rpc;
  std::unique_ptr<FileClient> client;
};

TEST_F(FilesFixture, SinkWriteThenSourceRead) {
  Bytes content = pattern(300'000);
  Result<void> wrote(Errc::state_error, "unset");
  client->write(fs1->address(), "lifn://utk.edu/data/1", content,
                [&](Result<void> r) { wrote = r; });
  world.engine().run();
  ASSERT_TRUE(wrote.ok());
  EXPECT_TRUE(fs1->has("lifn://utk.edu/data/1"));

  Result<Bytes> read(Errc::state_error, "unset");
  client->read("lifn://utk.edu/data/1", [&](Result<Bytes> r) { read = r; });
  world.engine().run();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), content);
  EXPECT_GE(fs1->stats().sink_sessions, 1u);
}

TEST_F(FilesFixture, ReplicationDaemonCopiesAndRegistersBothLocations) {
  client->write(fs1->address(), "lifn://utk.edu/data/2", pattern(10'000),
                [](Result<void>) {});
  world.engine().run();
  EXPECT_TRUE(fs2->has("lifn://utk.edu/data/2"));  // replication_factor = 2
  auto locations = rc->get("lifn://utk.edu/data/2");
  int location_count = 0;
  for (const auto& a : locations)
    if (a.name == rcds::names::kLifnLocation) ++location_count;
  EXPECT_EQ(location_count, 2);
}

TEST_F(FilesFixture, ReadFailsOverToSurvivingReplica) {
  Bytes content = pattern(50'000);
  client->write(fs1->address(), "lifn://utk.edu/data/3", content, [](Result<void>) {});
  world.engine().run();
  ASSERT_TRUE(fs2->has("lifn://utk.edu/data/3"));

  world.host("fs1")->set_up(false);
  Result<Bytes> read(Errc::state_error, "unset");
  client->read("lifn://utk.edu/data/3", [&](Result<Bytes> r) { read = r; });
  world.engine().run_for(duration::seconds(10));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), content);
  EXPECT_GE(fs2->stats().source_sessions, 1u);
}

TEST_F(FilesFixture, CorruptReplicaDetectedByHash) {
  client->write(fs1->address(), "lifn://utk.edu/data/4", pattern(1000), [](Result<void>) {});
  world.engine().run();
  // Corrupt both replicas in place (announce=false keeps the registered
  // hash describing the original content).
  fs1->store_local("lifn://utk.edu/data/4", pattern(1000, 999), /*announce=*/false);
  fs2->store_local("lifn://utk.edu/data/4", pattern(1000, 999), /*announce=*/false);
  Result<Bytes> read(Errc::state_error, "unset");
  client->read("lifn://utk.edu/data/4", [&](Result<Bytes> r) { read = r; });
  world.engine().run();
  EXPECT_EQ(read.code(), Errc::corrupt);
}

TEST_F(FilesFixture, MissingLifnReportsNotFound) {
  Result<Bytes> read(Errc::state_error, "unset");
  client->read("lifn://utk.edu/ghost", [&](Result<Bytes> r) { read = r; });
  world.engine().run();
  EXPECT_EQ(read.code(), Errc::not_found);
}

TEST_F(FilesFixture, EmptyFileRoundTrips) {
  Result<void> wrote(Errc::state_error, "unset");
  client->write(fs1->address(), "lifn://utk.edu/empty", Bytes{},
                [&](Result<void> r) { wrote = r; });
  world.engine().run();
  ASSERT_TRUE(wrote.ok());
  Result<Bytes> read(Errc::state_error, "unset");
  client->read("lifn://utk.edu/empty", [&](Result<Bytes> r) { read = r; });
  world.engine().run();
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().empty());
}

TEST(FilesDistance, ClosestReplicaIsPreferred) {
  // app shares a LAN with fs_near; fs_far is only reachable over the WAN.
  World world(43);
  world.create_network("lan", simnet::ethernet100());
  world.create_network("wan", simnet::wan_t3());
  auto& rc_host = world.create_host("rc");
  auto& near_host = world.create_host("fs_near");
  auto& far_host = world.create_host("fs_far");
  auto& app_host = world.create_host("app");
  world.attach(rc_host, *world.network("lan"));
  world.attach(rc_host, *world.network("wan"));
  world.attach(near_host, *world.network("lan"));
  world.attach(far_host, *world.network("wan"));
  world.attach(app_host, *world.network("lan"));
  world.attach(app_host, *world.network("wan"));

  rcds::RcServer rc(rc_host);
  FileServer near_server(near_host, {rc.address()});
  FileServer far_server(far_host, {rc.address()});

  EXPECT_EQ(net_distance(world, "app", "app"), 0);
  EXPECT_LT(net_distance(world, "app", "fs_near"), net_distance(world, "app", "fs_far"));
  EXPECT_EQ(net_distance(world, "fs_near", "fs_far"),
            std::numeric_limits<SimDuration>::max());

  // Same file on both servers; the client must read from the near one.
  Bytes content{1, 2, 3, 4};
  near_server.store_local("lifn://x/f", content);
  far_server.store_local("lifn://x/f", content);
  world.engine().run();

  transport::RpcEndpoint rpc(app_host, 9200);
  FileClient client(rpc, {rc.address()});
  Result<Bytes> read(Errc::state_error, "unset");
  client.read("lifn://x/f", [&](Result<Bytes> r) { read = r; });
  world.engine().run();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(near_server.stats().source_sessions, 1u);
  EXPECT_EQ(far_server.stats().source_sessions, 0u);
}

TEST_F(FilesFixture, ReplicationDaemonRepairsLostReplica) {
  // §3.2: the replication daemons maintain the redundancy target.  Kill
  // one replica after the initial write; the survivor's repair tick must
  // retract the dead location and... there being only one peer, re-push
  // once the peer returns.
  client->write(fs1->address(), "lifn://utk.edu/data/repair", pattern(8000),
                [](Result<void>) {});
  world.engine().run();
  ASSERT_TRUE(fs2->has("lifn://utk.edu/data/repair"));

  // fs2 dies and loses its disk (fresh process on reboot).
  world.host("fs2")->set_up(false);
  world.engine().run_for(duration::seconds(20));  // a repair tick passes
  // The dead replica's location was retracted from RC.
  int live_locations = 0;
  for (const auto& a : rc->get("lifn://utk.edu/data/repair"))
    if (a.name == rcds::names::kLifnLocation) ++live_locations;
  EXPECT_EQ(live_locations, 1);

  // The peer returns (empty); the next repair round re-pushes the copy.
  world.host("fs2")->set_up(true);
  world.engine().run_for(duration::seconds(40));
  EXPECT_GE(fs1->stats().repairs, 1u);
  int locations_after = 0;
  for (const auto& a : rc->get("lifn://utk.edu/data/repair"))
    if (a.name == rcds::names::kLifnLocation) ++locations_after;
  EXPECT_EQ(locations_after, 2);
}

TEST_F(FilesFixture, DirectStoreFetchRpc) {
  // The plain kStore/kFetch path (used by checkpoint storage).
  ByteWriter w;
  w.str("lifn://utk.edu/ckpt/1");
  w.blob(pattern(5000));
  Result<Bytes> stored(Errc::state_error, "unset");
  app_rpc->call(fs1->address(), tags::kStore, std::move(w).take(),
                [&](Result<Bytes> r) { stored = r; });
  world.engine().run();
  ASSERT_TRUE(stored.ok());

  ByteWriter f;
  f.str("lifn://utk.edu/ckpt/1");
  Result<Bytes> fetched(Errc::state_error, "unset");
  app_rpc->call(fs1->address(), tags::kFetch, std::move(f).take(),
                [&](Result<Bytes> r) { fetched = r; });
  world.engine().run();
  ASSERT_TRUE(fetched.ok());
  ByteReader r(fetched.value());
  EXPECT_EQ(r.blob().value(), pattern(5000));
}

}  // namespace
}  // namespace snipe::files
