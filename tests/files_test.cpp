// Tests for SNIPE file servers: sink/source I/O, replication daemons,
// RC location registration, closest-replica selection, failover, and
// integrity verification.
#include <gtest/gtest.h>

#include "files/fileserver.hpp"

namespace snipe::files {
namespace {

using simnet::Address;
using simnet::World;

Bytes pattern(std::size_t n, std::uint32_t seed = 1) {
  Bytes b(n);
  std::uint32_t x = seed;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    b[i] = static_cast<std::uint8_t>(x >> 16);
  }
  return b;
}

struct FilesFixture : ::testing::Test {
  FilesFixture() : world(41) {
    world.create_network("lan", simnet::ethernet100());
    for (const char* name : {"rc", "fs1", "fs2", "app"})
      world.attach(world.create_host(name), *world.network("lan"));
    rc = std::make_unique<rcds::RcServer>(*world.host("rc"));

    FileServerConfig cfg;
    cfg.replication_factor = 2;
    fs1 = std::make_unique<FileServer>(*world.host("fs1"), replicas(), FileServer::kDefaultPort,
                                       cfg);
    fs2 = std::make_unique<FileServer>(*world.host("fs2"), replicas(), FileServer::kDefaultPort,
                                       cfg);
    fs1->set_peers({fs2->address()});
    fs2->set_peers({fs1->address()});

    app_rpc = std::make_unique<transport::RpcEndpoint>(*world.host("app"), 9200);
    client = std::make_unique<FileClient>(*app_rpc, replicas());
  }
  std::vector<Address> replicas() { return {rc->address()}; }

  World world;
  std::unique_ptr<rcds::RcServer> rc;
  std::unique_ptr<FileServer> fs1, fs2;
  std::unique_ptr<transport::RpcEndpoint> app_rpc;
  std::unique_ptr<FileClient> client;
};

TEST_F(FilesFixture, SinkWriteThenSourceRead) {
  Bytes content = pattern(300'000);
  Result<void> wrote(Errc::state_error, "unset");
  client->write(fs1->address(), "lifn://utk.edu/data/1", content,
                [&](Result<void> r) { wrote = r; });
  world.engine().run();
  ASSERT_TRUE(wrote.ok());
  EXPECT_TRUE(fs1->has("lifn://utk.edu/data/1"));

  Result<Bytes> read(Errc::state_error, "unset");
  client->read("lifn://utk.edu/data/1", [&](Result<Bytes> r) { read = r; });
  world.engine().run();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), content);
  EXPECT_GE(fs1->stats().sink_sessions, 1u);
}

TEST_F(FilesFixture, ReplicationDaemonCopiesAndRegistersBothLocations) {
  client->write(fs1->address(), "lifn://utk.edu/data/2", pattern(10'000),
                [](Result<void>) {});
  world.engine().run();
  EXPECT_TRUE(fs2->has("lifn://utk.edu/data/2"));  // replication_factor = 2
  auto locations = rc->get("lifn://utk.edu/data/2");
  int location_count = 0;
  for (const auto& a : locations)
    if (a.name == rcds::names::kLifnLocation) ++location_count;
  EXPECT_EQ(location_count, 2);
}

TEST_F(FilesFixture, ReadFailsOverToSurvivingReplica) {
  Bytes content = pattern(50'000);
  client->write(fs1->address(), "lifn://utk.edu/data/3", content, [](Result<void>) {});
  world.engine().run();
  ASSERT_TRUE(fs2->has("lifn://utk.edu/data/3"));

  world.host("fs1")->set_up(false);
  Result<Bytes> read(Errc::state_error, "unset");
  client->read("lifn://utk.edu/data/3", [&](Result<Bytes> r) { read = r; });
  world.engine().run_for(duration::seconds(10));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), content);
  EXPECT_GE(fs2->stats().source_sessions, 1u);
}

TEST_F(FilesFixture, CorruptReplicaDetectedByHash) {
  client->write(fs1->address(), "lifn://utk.edu/data/4", pattern(1000), [](Result<void>) {});
  world.engine().run();
  // Corrupt both replicas in place (announce=false keeps the registered
  // hash describing the original content).
  fs1->store_local("lifn://utk.edu/data/4", pattern(1000, 999), /*announce=*/false);
  fs2->store_local("lifn://utk.edu/data/4", pattern(1000, 999), /*announce=*/false);
  Result<Bytes> read(Errc::state_error, "unset");
  client->read("lifn://utk.edu/data/4", [&](Result<Bytes> r) { read = r; });
  world.engine().run();
  EXPECT_EQ(read.code(), Errc::corrupt);
}

TEST_F(FilesFixture, MissingLifnReportsNotFound) {
  Result<Bytes> read(Errc::state_error, "unset");
  client->read("lifn://utk.edu/ghost", [&](Result<Bytes> r) { read = r; });
  world.engine().run();
  EXPECT_EQ(read.code(), Errc::not_found);
}

TEST_F(FilesFixture, EmptyFileRoundTrips) {
  Result<void> wrote(Errc::state_error, "unset");
  client->write(fs1->address(), "lifn://utk.edu/empty", Bytes{},
                [&](Result<void> r) { wrote = r; });
  world.engine().run();
  ASSERT_TRUE(wrote.ok());
  Result<Bytes> read(Errc::state_error, "unset");
  client->read("lifn://utk.edu/empty", [&](Result<Bytes> r) { read = r; });
  world.engine().run();
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().empty());
}

TEST(FilesDistance, ClosestReplicaIsPreferred) {
  // app shares a LAN with fs_near; fs_far is only reachable over the WAN.
  World world(43);
  world.create_network("lan", simnet::ethernet100());
  world.create_network("wan", simnet::wan_t3());
  auto& rc_host = world.create_host("rc");
  auto& near_host = world.create_host("fs_near");
  auto& far_host = world.create_host("fs_far");
  auto& app_host = world.create_host("app");
  world.attach(rc_host, *world.network("lan"));
  world.attach(rc_host, *world.network("wan"));
  world.attach(near_host, *world.network("lan"));
  world.attach(far_host, *world.network("wan"));
  world.attach(app_host, *world.network("lan"));
  world.attach(app_host, *world.network("wan"));

  rcds::RcServer rc(rc_host);
  FileServer near_server(near_host, {rc.address()});
  FileServer far_server(far_host, {rc.address()});

  EXPECT_EQ(world.net_distance("app", "app"), 0);
  EXPECT_LT(world.net_distance("app", "fs_near"), world.net_distance("app", "fs_far"));
  // Hosts never forward: with no router between them, fs_near and fs_far
  // are mutually unreachable even though app can talk to both.
  EXPECT_EQ(world.net_distance("fs_near", "fs_far"), simnet::World::kUnreachable);
  // The deprecated files:: shim forwards to the World method.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_EQ(net_distance(world, "app", "fs_near"), world.net_distance("app", "fs_near"));
#pragma GCC diagnostic pop

  // Same file on both servers; the client must read from the near one.
  Bytes content{1, 2, 3, 4};
  near_server.store_local("lifn://x/f", content);
  far_server.store_local("lifn://x/f", content);
  world.engine().run();

  transport::RpcEndpoint rpc(app_host, 9200);
  FileClient client(rpc, {rc.address()});
  Result<Bytes> read(Errc::state_error, "unset");
  client.read("lifn://x/f", [&](Result<Bytes> r) { read = r; });
  world.engine().run();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(near_server.stats().source_sessions, 1u);
  EXPECT_EQ(far_server.stats().source_sessions, 0u);
}

TEST_F(FilesFixture, ReplicationDaemonRepairsLostReplica) {
  // §3.2: the replication daemons maintain the redundancy target.  Kill
  // one replica after the initial write; the survivor's repair tick must
  // retract the dead location and... there being only one peer, re-push
  // once the peer returns.
  client->write(fs1->address(), "lifn://utk.edu/data/repair", pattern(8000),
                [](Result<void>) {});
  world.engine().run();
  ASSERT_TRUE(fs2->has("lifn://utk.edu/data/repair"));

  // fs2 dies and loses its disk (fresh process on reboot).
  world.host("fs2")->set_up(false);
  world.engine().run_for(duration::seconds(20));  // a repair tick passes
  // The dead replica's location was retracted from RC.
  int live_locations = 0;
  for (const auto& a : rc->get("lifn://utk.edu/data/repair"))
    if (a.name == rcds::names::kLifnLocation) ++live_locations;
  EXPECT_EQ(live_locations, 1);

  // The peer returns (empty); the next repair round re-pushes the copy.
  world.host("fs2")->set_up(true);
  world.engine().run_for(duration::seconds(40));
  EXPECT_GE(fs1->stats().repairs, 1u);
  int locations_after = 0;
  for (const auto& a : rc->get("lifn://utk.edu/data/repair"))
    if (a.name == rcds::names::kLifnLocation) ++locations_after;
  EXPECT_EQ(locations_after, 2);
}

TEST_F(FilesFixture, StripedWriteThenStripedReadRoundTrips) {
  // 4 stripes, small chunks, a size that is not a chunk multiple: the last
  // chunk is short and every stripe owns a different byte count.
  FileClientConfig cfg;
  cfg.chunk = 4096;
  cfg.stripes = 4;
  FileClient striped(*app_rpc, replicas(), cfg);
  Bytes content = pattern(300'001, 7);
  Result<void> wrote(Errc::state_error, "unset");
  striped.write(fs1->address(), "lifn://utk.edu/striped/1", content,
                [&](Result<void> r) { wrote = r; });
  world.engine().run();
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(fs1->read("lifn://utk.edu/striped/1").value(), content);

  Result<Bytes> read(Errc::state_error, "unset");
  striped.read("lifn://utk.edu/striped/1", [&](Result<Bytes> r) { read = r; });
  world.engine().run();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), content);
  // With two live replicas, round-robin spread means both served stripes.
  EXPECT_GE(fs1->stats().source_sessions, 1u);
  EXPECT_GE(fs2->stats().source_sessions, 1u);
}

TEST_F(FilesFixture, StripedReadSurvivesMidStreamReplicaCrash) {
  // The pre-stripe bug: a replica dying after kOpenSource but before the
  // last kSourceData chunk wedged the read forever.  Now the stalled
  // stripes' progress timers re-issue them from the survivor.
  FileClientConfig cfg;
  cfg.chunk = 8192;
  cfg.stripes = 2;
  FileClient striped(*app_rpc, replicas(), cfg);
  Bytes content = pattern(400'000, 9);
  striped.write(fs1->address(), "lifn://utk.edu/striped/crash", content,
                [](Result<void>) {});
  world.engine().run();
  ASSERT_TRUE(fs2->has("lifn://utk.edu/striped/crash"));

  Result<Bytes> read(Errc::state_error, "unset");
  striped.read("lifn://utk.edu/striped/crash", [&](Result<Bytes> r) { read = r; });
  // Kill fs1 while its stripe stream is in flight.
  world.engine().schedule(duration::milliseconds(3),
                          [&] { world.host("fs1")->set_up(false); });
  world.engine().run_for(duration::seconds(30));
  ASSERT_TRUE(read.ok()) << read.error().to_string();
  EXPECT_EQ(read.value(), content);
}

TEST_F(FilesFixture, AbandonedSinkExpiresAfterTtl) {
  // A writer opens a sink, sends part of the data, and dies.  The sink's
  // idle TTL must reap it (pre-TTL it leaked forever) without storing the
  // partial file.
  ByteWriter open;
  open.str("lifn://utk.edu/abandoned");
  open.u64(10'000);
  open.u32(1);
  Result<Bytes> opened(Errc::state_error, "unset");
  app_rpc->call(fs1->address(), tags::kOpenSink, std::move(open).take(),
                [&](Result<Bytes> r) { opened = r; });
  world.engine().run();
  ASSERT_TRUE(opened.ok());
  std::uint64_t sink_id = ByteReader(opened.value()).u64().value();

  ByteWriter data;
  data.u64(sink_id);
  data.u64(0);
  data.blob(pattern(1000));
  app_rpc->notify(fs1->address(), tags::kSinkData, std::move(data).take());
  world.engine().run();
  EXPECT_EQ(fs1->open_sinks(), 1u);

  world.engine().run_for(duration::seconds(120));  // default TTL is 60 s
  EXPECT_EQ(fs1->open_sinks(), 0u);
  EXPECT_GE(fs1->stats().sinks_expired, 1u);
  EXPECT_FALSE(fs1->has("lifn://utk.edu/abandoned"));
}

TEST_F(FilesFixture, CloseSinkWithMissingBytesIsRejected) {
  ByteWriter open;
  open.str("lifn://utk.edu/short");
  open.u64(5000);
  open.u32(1);
  Result<Bytes> opened(Errc::state_error, "unset");
  app_rpc->call(fs1->address(), tags::kOpenSink, std::move(open).take(),
                [&](Result<Bytes> r) { opened = r; });
  world.engine().run();
  ASSERT_TRUE(opened.ok());
  std::uint64_t sink_id = ByteReader(opened.value()).u64().value();

  ByteWriter data;
  data.u64(sink_id);
  data.u64(0);
  data.blob(pattern(1000));
  app_rpc->notify(fs1->address(), tags::kSinkData, std::move(data).take());

  ByteWriter close;
  close.u64(sink_id);
  Result<Bytes> closed(Errc::state_error, "unset");
  app_rpc->call(fs1->address(), tags::kCloseSink, std::move(close).take(),
                [&](Result<Bytes> r) { closed = r; });
  world.engine().run();
  EXPECT_EQ(closed.code(), Errc::state_error);
  EXPECT_EQ(fs1->stats().sinks_incomplete, 1u);
  EXPECT_EQ(fs1->open_sinks(), 0u);
  EXPECT_FALSE(fs1->has("lifn://utk.edu/short"));
}

TEST(FilesRepair, RepairDoesNotChurnWhenOnlyLivePeersRemain) {
  // Replication factor 3 with only two servers: the target is permanently
  // unreachable.  The old repair loop pushed a fresh copy to the *already
  // registered* peer every tick — endless churn with no replica-count
  // progress.  The repair pass must skip peers that are live replicas.
  World world(47);
  world.create_network("lan", simnet::ethernet100());
  for (const char* name : {"rc", "fs1", "fs2", "app"})
    world.attach(world.create_host(name), *world.network("lan"));
  rcds::RcServer rc(*world.host("rc"));
  FileServerConfig cfg;
  cfg.replication_factor = 3;
  FileServer fs1(*world.host("fs1"), {rc.address()}, FileServer::kDefaultPort, cfg);
  FileServer fs2(*world.host("fs2"), {rc.address()}, FileServer::kDefaultPort, cfg);
  fs1.set_peers({fs2.address()});
  fs2.set_peers({fs1.address()});

  transport::RpcEndpoint rpc(*world.host("app"), 9200);
  FileClient client(rpc, {rc.address()});
  client.write(fs1.address(), "lifn://utk.edu/churn", pattern(4000), [](Result<void>) {});
  world.engine().run();
  ASSERT_TRUE(fs2.has("lifn://utk.edu/churn"));
  std::uint64_t received_after_write = fs2.stats().replicas_received;

  world.engine().run_for(duration::seconds(90));  // several repair periods
  EXPECT_EQ(fs1.stats().repairs, 0u);
  EXPECT_EQ(fs2.stats().repairs, 0u);
  EXPECT_EQ(fs2.stats().replicas_received, received_after_write);
}

TEST_F(FilesFixture, OverwriteDoesNotDoubleCountStoredBytes) {
  fs1->store_local("lifn://utk.edu/ow", pattern(1000), /*announce=*/false);
  EXPECT_EQ(fs1->stats().bytes_stored, 1000u);
  fs1->store_local("lifn://utk.edu/ow", pattern(400), /*announce=*/false);
  EXPECT_EQ(fs1->stats().bytes_stored, 400u);
  fs1->store_local("lifn://utk.edu/ow2", pattern(50), /*announce=*/false);
  EXPECT_EQ(fs1->stats().bytes_stored, 450u);
}

TEST_F(FilesFixture, DirectStoreFetchRpc) {
  // The plain kStore/kFetch path (used by checkpoint storage).
  ByteWriter w;
  w.str("lifn://utk.edu/ckpt/1");
  w.blob(pattern(5000));
  Result<Bytes> stored(Errc::state_error, "unset");
  app_rpc->call(fs1->address(), tags::kStore, std::move(w).take(),
                [&](Result<Bytes> r) { stored = r; });
  world.engine().run();
  ASSERT_TRUE(stored.ok());

  ByteWriter f;
  f.str("lifn://utk.edu/ckpt/1");
  Result<Bytes> fetched(Errc::state_error, "unset");
  app_rpc->call(fs1->address(), tags::kFetch, std::move(f).take(),
                [&](Result<Bytes> r) { fetched = r; });
  world.engine().run();
  ASSERT_TRUE(fetched.ok());
  ByteReader r(fetched.value());
  EXPECT_EQ(r.blob().value(), pattern(5000));
}

}  // namespace
}  // namespace snipe::files
