// Tests for RSA encryption and the §4 authenticated session channel.
#include <gtest/gtest.h>

#include "crypto/session.hpp"

namespace snipe::crypto {
namespace {

struct SessionTest : ::testing::Test {
  SessionTest() : rng(321) { keys = generate_keypair(rng, 512); }
  Rng rng;
  KeyPair keys;
};

TEST_F(SessionTest, EncryptDecryptRoundTrip) {
  Bytes message = to_bytes("session key material 0123456789");
  auto cipher = encrypt(keys.pub, message, rng).value();
  EXPECT_NE(cipher, message);
  EXPECT_EQ(decrypt(keys.priv, cipher).value(), message);
}

TEST_F(SessionTest, EncryptionIsRandomized) {
  Bytes message = to_bytes("same plaintext");
  auto c1 = encrypt(keys.pub, message, rng).value();
  auto c2 = encrypt(keys.pub, message, rng).value();
  EXPECT_NE(c1, c2);  // random padding
  EXPECT_EQ(decrypt(keys.priv, c1).value(), decrypt(keys.priv, c2).value());
}

TEST_F(SessionTest, OversizeMessageRejected) {
  Bytes big(100, 0x7);  // > 64 - 11 bytes for a 512-bit key
  EXPECT_EQ(encrypt(keys.pub, big, rng).code(), Errc::invalid_argument);
}

TEST_F(SessionTest, TamperedCiphertextRejected) {
  auto cipher = encrypt(keys.pub, to_bytes("secret"), rng).value();
  cipher[cipher.size() / 2] ^= 0x40;
  EXPECT_FALSE(decrypt(keys.priv, cipher).ok());
}

TEST_F(SessionTest, WrongKeyCannotDecrypt) {
  auto other = generate_keypair(rng, 512);
  auto cipher = encrypt(keys.pub, to_bytes("secret"), rng).value();
  EXPECT_FALSE(decrypt(other.priv, cipher).ok());
}

TEST_F(SessionTest, HandshakeAndBidirectionalTraffic) {
  auto initiated = Session::initiate(keys.pub, rng).value();
  Session& client = initiated.first;
  Session server = Session::accept(keys.priv, initiated.second).value();

  // Client -> server.
  Bytes sealed = client.seal(to_bytes("authorize spawn: proc-7"));
  EXPECT_EQ(to_string(server.open(sealed).value()), "authorize spawn: proc-7");
  // Server -> client.
  Bytes reply = server.seal(to_bytes("granted"));
  EXPECT_EQ(to_string(client.open(reply).value()), "granted");
  // Many messages, sequence keeps advancing.
  for (int i = 0; i < 10; ++i) {
    Bytes m = client.seal({static_cast<std::uint8_t>(i)});
    EXPECT_TRUE(server.open(m).ok()) << i;
  }
  EXPECT_EQ(client.sent(), 11u);
  EXPECT_EQ(server.received(), 11u);
}

TEST_F(SessionTest, ReplayDetected) {
  auto initiated = Session::initiate(keys.pub, rng).value();
  Session& client = initiated.first;
  Session server = Session::accept(keys.priv, initiated.second).value();
  Bytes sealed = client.seal(to_bytes("once"));
  EXPECT_TRUE(server.open(sealed).ok());
  // Hijacker replays the captured message.
  EXPECT_EQ(server.open(sealed).code(), Errc::permission_denied);
}

TEST_F(SessionTest, TamperedPayloadDetected) {
  auto initiated = Session::initiate(keys.pub, rng).value();
  Session& client = initiated.first;
  Session server = Session::accept(keys.priv, initiated.second).value();
  Bytes sealed = client.seal(to_bytes("pay me 1"));
  sealed[sealed.size() - 40] ^= 0x1;  // flip a payload byte
  EXPECT_EQ(server.open(sealed).code(), Errc::corrupt);
}

TEST_F(SessionTest, DirectionConfusionDetected) {
  // A hijacker reflecting the client's own message back at it must fail:
  // MACs are direction-bound.
  auto initiated = Session::initiate(keys.pub, rng).value();
  Session& client = initiated.first;
  Bytes sealed = client.seal(to_bytes("mine"));
  EXPECT_EQ(client.open(sealed).code(), Errc::corrupt);
}

TEST_F(SessionTest, ForeignHelloRejected) {
  auto other = generate_keypair(rng, 512);
  auto initiated = Session::initiate(other.pub, rng).value();  // for someone else
  EXPECT_FALSE(Session::accept(keys.priv, initiated.second).ok());
}

}  // namespace
}  // namespace snipe::crypto
