# Empty dependencies file for bench_rm_scalability.
# This may be replaced when dependencies are built.
