file(REMOVE_RECURSE
  "CMakeFiles/bench_rm_scalability.dir/bench_rm_scalability.cpp.o"
  "CMakeFiles/bench_rm_scalability.dir/bench_rm_scalability.cpp.o.d"
  "bench_rm_scalability"
  "bench_rm_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rm_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
