file(REMOVE_RECURSE
  "CMakeFiles/bench_fileserv.dir/bench_fileserv.cpp.o"
  "CMakeFiles/bench_fileserv.dir/bench_fileserv.cpp.o.d"
  "bench_fileserv"
  "bench_fileserv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fileserv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
