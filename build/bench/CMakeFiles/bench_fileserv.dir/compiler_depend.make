# Empty compiler generated dependencies file for bench_fileserv.
# This may be replaced when dependencies are built.
