# Empty compiler generated dependencies file for bench_mpiconnect.
# This may be replaced when dependencies are built.
