file(REMOVE_RECURSE
  "CMakeFiles/bench_mpiconnect.dir/bench_mpiconnect.cpp.o"
  "CMakeFiles/bench_mpiconnect.dir/bench_mpiconnect.cpp.o.d"
  "bench_mpiconnect"
  "bench_mpiconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mpiconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
