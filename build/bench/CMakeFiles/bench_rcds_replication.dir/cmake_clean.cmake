file(REMOVE_RECURSE
  "CMakeFiles/bench_rcds_replication.dir/bench_rcds_replication.cpp.o"
  "CMakeFiles/bench_rcds_replication.dir/bench_rcds_replication.cpp.o.d"
  "bench_rcds_replication"
  "bench_rcds_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rcds_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
