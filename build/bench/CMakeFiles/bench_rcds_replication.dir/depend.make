# Empty dependencies file for bench_rcds_replication.
# This may be replaced when dependencies are built.
