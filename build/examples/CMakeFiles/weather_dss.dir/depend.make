# Empty dependencies file for weather_dss.
# This may be replaced when dependencies are built.
