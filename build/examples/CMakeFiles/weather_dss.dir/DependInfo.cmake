
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/weather_dss.cpp" "examples/CMakeFiles/weather_dss.dir/weather_dss.cpp.o" "gcc" "examples/CMakeFiles/weather_dss.dir/weather_dss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/snipe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/snipe_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/rm/CMakeFiles/snipe_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/daemon/CMakeFiles/snipe_daemon.dir/DependInfo.cmake"
  "/root/repo/build/src/playground/CMakeFiles/snipe_playground.dir/DependInfo.cmake"
  "/root/repo/build/src/files/CMakeFiles/snipe_files.dir/DependInfo.cmake"
  "/root/repo/build/src/rcds/CMakeFiles/snipe_rcds.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/snipe_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/snipe_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/snipe_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snipe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
