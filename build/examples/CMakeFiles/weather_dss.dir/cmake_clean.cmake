file(REMOVE_RECURSE
  "CMakeFiles/weather_dss.dir/weather_dss.cpp.o"
  "CMakeFiles/weather_dss.dir/weather_dss.cpp.o.d"
  "weather_dss"
  "weather_dss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_dss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
