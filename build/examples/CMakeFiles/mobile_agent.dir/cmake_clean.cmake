file(REMOVE_RECURSE
  "CMakeFiles/mobile_agent.dir/mobile_agent.cpp.o"
  "CMakeFiles/mobile_agent.dir/mobile_agent.cpp.o.d"
  "mobile_agent"
  "mobile_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
