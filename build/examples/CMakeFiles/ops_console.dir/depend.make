# Empty dependencies file for ops_console.
# This may be replaced when dependencies are built.
