file(REMOVE_RECURSE
  "CMakeFiles/ops_console.dir/ops_console.cpp.o"
  "CMakeFiles/ops_console.dir/ops_console.cpp.o.d"
  "ops_console"
  "ops_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
