# Empty dependencies file for mpi_connect_bridge.
# This may be replaced when dependencies are built.
