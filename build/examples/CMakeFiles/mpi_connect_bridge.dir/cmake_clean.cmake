file(REMOVE_RECURSE
  "CMakeFiles/mpi_connect_bridge.dir/mpi_connect_bridge.cpp.o"
  "CMakeFiles/mpi_connect_bridge.dir/mpi_connect_bridge.cpp.o.d"
  "mpi_connect_bridge"
  "mpi_connect_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_connect_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
