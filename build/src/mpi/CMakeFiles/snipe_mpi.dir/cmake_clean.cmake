file(REMOVE_RECURSE
  "CMakeFiles/snipe_mpi.dir/bridge.cpp.o"
  "CMakeFiles/snipe_mpi.dir/bridge.cpp.o.d"
  "CMakeFiles/snipe_mpi.dir/mpi.cpp.o"
  "CMakeFiles/snipe_mpi.dir/mpi.cpp.o.d"
  "CMakeFiles/snipe_mpi.dir/pvm.cpp.o"
  "CMakeFiles/snipe_mpi.dir/pvm.cpp.o.d"
  "libsnipe_mpi.a"
  "libsnipe_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snipe_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
