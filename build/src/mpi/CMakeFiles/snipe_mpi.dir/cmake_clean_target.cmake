file(REMOVE_RECURSE
  "libsnipe_mpi.a"
)
