# Empty compiler generated dependencies file for snipe_mpi.
# This may be replaced when dependencies are built.
