
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/bridge.cpp" "src/mpi/CMakeFiles/snipe_mpi.dir/bridge.cpp.o" "gcc" "src/mpi/CMakeFiles/snipe_mpi.dir/bridge.cpp.o.d"
  "/root/repo/src/mpi/mpi.cpp" "src/mpi/CMakeFiles/snipe_mpi.dir/mpi.cpp.o" "gcc" "src/mpi/CMakeFiles/snipe_mpi.dir/mpi.cpp.o.d"
  "/root/repo/src/mpi/pvm.cpp" "src/mpi/CMakeFiles/snipe_mpi.dir/pvm.cpp.o" "gcc" "src/mpi/CMakeFiles/snipe_mpi.dir/pvm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rcds/CMakeFiles/snipe_rcds.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/snipe_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snipe_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/snipe_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/snipe_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
