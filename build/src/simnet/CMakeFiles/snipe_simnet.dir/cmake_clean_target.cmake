file(REMOVE_RECURSE
  "libsnipe_simnet.a"
)
