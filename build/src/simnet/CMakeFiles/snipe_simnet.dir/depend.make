# Empty dependencies file for snipe_simnet.
# This may be replaced when dependencies are built.
