file(REMOVE_RECURSE
  "CMakeFiles/snipe_simnet.dir/engine.cpp.o"
  "CMakeFiles/snipe_simnet.dir/engine.cpp.o.d"
  "CMakeFiles/snipe_simnet.dir/media.cpp.o"
  "CMakeFiles/snipe_simnet.dir/media.cpp.o.d"
  "CMakeFiles/snipe_simnet.dir/world.cpp.o"
  "CMakeFiles/snipe_simnet.dir/world.cpp.o.d"
  "libsnipe_simnet.a"
  "libsnipe_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snipe_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
