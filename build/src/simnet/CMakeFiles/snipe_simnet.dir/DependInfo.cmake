
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/engine.cpp" "src/simnet/CMakeFiles/snipe_simnet.dir/engine.cpp.o" "gcc" "src/simnet/CMakeFiles/snipe_simnet.dir/engine.cpp.o.d"
  "/root/repo/src/simnet/media.cpp" "src/simnet/CMakeFiles/snipe_simnet.dir/media.cpp.o" "gcc" "src/simnet/CMakeFiles/snipe_simnet.dir/media.cpp.o.d"
  "/root/repo/src/simnet/world.cpp" "src/simnet/CMakeFiles/snipe_simnet.dir/world.cpp.o" "gcc" "src/simnet/CMakeFiles/snipe_simnet.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/snipe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
