# Empty compiler generated dependencies file for snipe_core.
# This may be replaced when dependencies are built.
