file(REMOVE_RECURSE
  "libsnipe_core.a"
)
