file(REMOVE_RECURSE
  "CMakeFiles/snipe_core.dir/console.cpp.o"
  "CMakeFiles/snipe_core.dir/console.cpp.o.d"
  "CMakeFiles/snipe_core.dir/group.cpp.o"
  "CMakeFiles/snipe_core.dir/group.cpp.o.d"
  "CMakeFiles/snipe_core.dir/process.cpp.o"
  "CMakeFiles/snipe_core.dir/process.cpp.o.d"
  "libsnipe_core.a"
  "libsnipe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snipe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
