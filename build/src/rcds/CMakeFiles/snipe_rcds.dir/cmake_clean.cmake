file(REMOVE_RECURSE
  "CMakeFiles/snipe_rcds.dir/assertion.cpp.o"
  "CMakeFiles/snipe_rcds.dir/assertion.cpp.o.d"
  "CMakeFiles/snipe_rcds.dir/client.cpp.o"
  "CMakeFiles/snipe_rcds.dir/client.cpp.o.d"
  "CMakeFiles/snipe_rcds.dir/server.cpp.o"
  "CMakeFiles/snipe_rcds.dir/server.cpp.o.d"
  "CMakeFiles/snipe_rcds.dir/signed.cpp.o"
  "CMakeFiles/snipe_rcds.dir/signed.cpp.o.d"
  "libsnipe_rcds.a"
  "libsnipe_rcds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snipe_rcds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
