file(REMOVE_RECURSE
  "libsnipe_rcds.a"
)
