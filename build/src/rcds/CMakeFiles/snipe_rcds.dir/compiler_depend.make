# Empty compiler generated dependencies file for snipe_rcds.
# This may be replaced when dependencies are built.
