file(REMOVE_RECURSE
  "libsnipe_transport.a"
)
