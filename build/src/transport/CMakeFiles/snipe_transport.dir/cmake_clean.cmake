file(REMOVE_RECURSE
  "CMakeFiles/snipe_transport.dir/ethmcast.cpp.o"
  "CMakeFiles/snipe_transport.dir/ethmcast.cpp.o.d"
  "CMakeFiles/snipe_transport.dir/multipath.cpp.o"
  "CMakeFiles/snipe_transport.dir/multipath.cpp.o.d"
  "CMakeFiles/snipe_transport.dir/rpc.cpp.o"
  "CMakeFiles/snipe_transport.dir/rpc.cpp.o.d"
  "CMakeFiles/snipe_transport.dir/srudp.cpp.o"
  "CMakeFiles/snipe_transport.dir/srudp.cpp.o.d"
  "CMakeFiles/snipe_transport.dir/stream.cpp.o"
  "CMakeFiles/snipe_transport.dir/stream.cpp.o.d"
  "CMakeFiles/snipe_transport.dir/wire.cpp.o"
  "CMakeFiles/snipe_transport.dir/wire.cpp.o.d"
  "libsnipe_transport.a"
  "libsnipe_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snipe_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
