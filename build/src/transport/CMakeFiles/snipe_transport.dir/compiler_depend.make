# Empty compiler generated dependencies file for snipe_transport.
# This may be replaced when dependencies are built.
