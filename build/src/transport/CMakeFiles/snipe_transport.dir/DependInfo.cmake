
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/ethmcast.cpp" "src/transport/CMakeFiles/snipe_transport.dir/ethmcast.cpp.o" "gcc" "src/transport/CMakeFiles/snipe_transport.dir/ethmcast.cpp.o.d"
  "/root/repo/src/transport/multipath.cpp" "src/transport/CMakeFiles/snipe_transport.dir/multipath.cpp.o" "gcc" "src/transport/CMakeFiles/snipe_transport.dir/multipath.cpp.o.d"
  "/root/repo/src/transport/rpc.cpp" "src/transport/CMakeFiles/snipe_transport.dir/rpc.cpp.o" "gcc" "src/transport/CMakeFiles/snipe_transport.dir/rpc.cpp.o.d"
  "/root/repo/src/transport/srudp.cpp" "src/transport/CMakeFiles/snipe_transport.dir/srudp.cpp.o" "gcc" "src/transport/CMakeFiles/snipe_transport.dir/srudp.cpp.o.d"
  "/root/repo/src/transport/stream.cpp" "src/transport/CMakeFiles/snipe_transport.dir/stream.cpp.o" "gcc" "src/transport/CMakeFiles/snipe_transport.dir/stream.cpp.o.d"
  "/root/repo/src/transport/wire.cpp" "src/transport/CMakeFiles/snipe_transport.dir/wire.cpp.o" "gcc" "src/transport/CMakeFiles/snipe_transport.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/snipe_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/snipe_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snipe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
