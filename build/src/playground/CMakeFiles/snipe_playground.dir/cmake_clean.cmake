file(REMOVE_RECURSE
  "CMakeFiles/snipe_playground.dir/playground.cpp.o"
  "CMakeFiles/snipe_playground.dir/playground.cpp.o.d"
  "CMakeFiles/snipe_playground.dir/svm.cpp.o"
  "CMakeFiles/snipe_playground.dir/svm.cpp.o.d"
  "CMakeFiles/snipe_playground.dir/svmasm.cpp.o"
  "CMakeFiles/snipe_playground.dir/svmasm.cpp.o.d"
  "libsnipe_playground.a"
  "libsnipe_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snipe_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
