# Empty dependencies file for snipe_playground.
# This may be replaced when dependencies are built.
