file(REMOVE_RECURSE
  "libsnipe_playground.a"
)
