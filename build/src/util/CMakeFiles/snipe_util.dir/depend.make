# Empty dependencies file for snipe_util.
# This may be replaced when dependencies are built.
