file(REMOVE_RECURSE
  "CMakeFiles/snipe_util.dir/bytes.cpp.o"
  "CMakeFiles/snipe_util.dir/bytes.cpp.o.d"
  "CMakeFiles/snipe_util.dir/log.cpp.o"
  "CMakeFiles/snipe_util.dir/log.cpp.o.d"
  "CMakeFiles/snipe_util.dir/result.cpp.o"
  "CMakeFiles/snipe_util.dir/result.cpp.o.d"
  "CMakeFiles/snipe_util.dir/rng.cpp.o"
  "CMakeFiles/snipe_util.dir/rng.cpp.o.d"
  "CMakeFiles/snipe_util.dir/strings.cpp.o"
  "CMakeFiles/snipe_util.dir/strings.cpp.o.d"
  "CMakeFiles/snipe_util.dir/uri.cpp.o"
  "CMakeFiles/snipe_util.dir/uri.cpp.o.d"
  "libsnipe_util.a"
  "libsnipe_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snipe_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
