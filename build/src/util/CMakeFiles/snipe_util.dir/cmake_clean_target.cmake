file(REMOVE_RECURSE
  "libsnipe_util.a"
)
