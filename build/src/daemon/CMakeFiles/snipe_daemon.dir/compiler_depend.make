# Empty compiler generated dependencies file for snipe_daemon.
# This may be replaced when dependencies are built.
