file(REMOVE_RECURSE
  "CMakeFiles/snipe_daemon.dir/daemon.cpp.o"
  "CMakeFiles/snipe_daemon.dir/daemon.cpp.o.d"
  "CMakeFiles/snipe_daemon.dir/task.cpp.o"
  "CMakeFiles/snipe_daemon.dir/task.cpp.o.d"
  "libsnipe_daemon.a"
  "libsnipe_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snipe_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
