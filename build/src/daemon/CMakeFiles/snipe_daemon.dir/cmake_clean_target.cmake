file(REMOVE_RECURSE
  "libsnipe_daemon.a"
)
