file(REMOVE_RECURSE
  "CMakeFiles/snipe_files.dir/fileserver.cpp.o"
  "CMakeFiles/snipe_files.dir/fileserver.cpp.o.d"
  "libsnipe_files.a"
  "libsnipe_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snipe_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
