# Empty compiler generated dependencies file for snipe_files.
# This may be replaced when dependencies are built.
