file(REMOVE_RECURSE
  "libsnipe_files.a"
)
