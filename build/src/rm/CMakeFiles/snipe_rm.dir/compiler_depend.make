# Empty compiler generated dependencies file for snipe_rm.
# This may be replaced when dependencies are built.
