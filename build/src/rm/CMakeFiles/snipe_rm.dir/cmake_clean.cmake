file(REMOVE_RECURSE
  "CMakeFiles/snipe_rm.dir/resource_manager.cpp.o"
  "CMakeFiles/snipe_rm.dir/resource_manager.cpp.o.d"
  "libsnipe_rm.a"
  "libsnipe_rm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snipe_rm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
