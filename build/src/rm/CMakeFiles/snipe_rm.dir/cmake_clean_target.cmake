file(REMOVE_RECURSE
  "libsnipe_rm.a"
)
