# Empty compiler generated dependencies file for snipe_crypto.
# This may be replaced when dependencies are built.
