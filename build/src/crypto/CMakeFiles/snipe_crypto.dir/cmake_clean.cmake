file(REMOVE_RECURSE
  "CMakeFiles/snipe_crypto.dir/bignum.cpp.o"
  "CMakeFiles/snipe_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/snipe_crypto.dir/hash.cpp.o"
  "CMakeFiles/snipe_crypto.dir/hash.cpp.o.d"
  "CMakeFiles/snipe_crypto.dir/identity.cpp.o"
  "CMakeFiles/snipe_crypto.dir/identity.cpp.o.d"
  "CMakeFiles/snipe_crypto.dir/rsa.cpp.o"
  "CMakeFiles/snipe_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/snipe_crypto.dir/session.cpp.o"
  "CMakeFiles/snipe_crypto.dir/session.cpp.o.d"
  "libsnipe_crypto.a"
  "libsnipe_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snipe_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
