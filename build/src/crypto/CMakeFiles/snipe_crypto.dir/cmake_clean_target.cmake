file(REMOVE_RECURSE
  "libsnipe_crypto.a"
)
