# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/rcds_test[1]_include.cmake")
include("/root/repo/build/tests/files_test[1]_include.cmake")
include("/root/repo/build/tests/playground_test[1]_include.cmake")
include("/root/repo/build/tests/daemon_rm_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
