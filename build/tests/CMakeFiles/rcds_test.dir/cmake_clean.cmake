file(REMOVE_RECURSE
  "CMakeFiles/rcds_test.dir/rcds_test.cpp.o"
  "CMakeFiles/rcds_test.dir/rcds_test.cpp.o.d"
  "rcds_test"
  "rcds_test.pdb"
  "rcds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
