# Empty compiler generated dependencies file for rcds_test.
# This may be replaced when dependencies are built.
