# Empty compiler generated dependencies file for files_test.
# This may be replaced when dependencies are built.
