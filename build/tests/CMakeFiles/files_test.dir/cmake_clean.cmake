file(REMOVE_RECURSE
  "CMakeFiles/files_test.dir/files_test.cpp.o"
  "CMakeFiles/files_test.dir/files_test.cpp.o.d"
  "files_test"
  "files_test.pdb"
  "files_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
