file(REMOVE_RECURSE
  "CMakeFiles/daemon_rm_test.dir/daemon_rm_test.cpp.o"
  "CMakeFiles/daemon_rm_test.dir/daemon_rm_test.cpp.o.d"
  "daemon_rm_test"
  "daemon_rm_test.pdb"
  "daemon_rm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daemon_rm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
