# Empty dependencies file for daemon_rm_test.
# This may be replaced when dependencies are built.
