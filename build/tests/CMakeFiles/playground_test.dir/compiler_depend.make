# Empty compiler generated dependencies file for playground_test.
# This may be replaced when dependencies are built.
