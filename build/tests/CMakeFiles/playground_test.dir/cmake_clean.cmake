file(REMOVE_RECURSE
  "CMakeFiles/playground_test.dir/playground_test.cpp.o"
  "CMakeFiles/playground_test.dir/playground_test.cpp.o.d"
  "playground_test"
  "playground_test.pdb"
  "playground_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/playground_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
