
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/playground_test.cpp" "tests/CMakeFiles/playground_test.dir/playground_test.cpp.o" "gcc" "tests/CMakeFiles/playground_test.dir/playground_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/playground/CMakeFiles/snipe_playground.dir/DependInfo.cmake"
  "/root/repo/build/src/rcds/CMakeFiles/snipe_rcds.dir/DependInfo.cmake"
  "/root/repo/build/src/files/CMakeFiles/snipe_files.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/snipe_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/snipe_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/snipe_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snipe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
